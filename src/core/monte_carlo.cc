#include "core/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/chao92.h"
#include "stats/curve_fit.h"
#include "stats/distributions.h"
#include "stats/kl_divergence.h"
#include "stats/sampling.h"

namespace uuq {

// Reusable buffers for Algorithm 2's inner loop. One instance lives per
// worker thread (thread_local in EstimateNhat); every buffer is either fully
// overwritten or restored to its resting state (histogram all-zero, shuffler
// permutation identity) before a run reads it, so reuse across grid points
// and estimates never changes results.
struct SimulationScratch {
  std::vector<double> publicity;   // weights of the current grid point
  std::vector<double> histogram;   // per-item multiplicity, size >= θN
  std::vector<int> touched;        // histogram cells that became non-zero
  std::vector<double> sim_counts;  // non-zero multiplicities, sorted desc
  PartialShuffler uniform_sampler;
  WeightedWorSelector weighted_sampler;
};

namespace {

/// The θλ grid [lo, hi] in `step` increments. Values within 1e-12 of zero
/// snap to exactly 0.0 so the uniform-publicity fast path triggers on the
/// middle row (lo + k·step lands on ±ε for the default grid).
std::vector<double> LambdaGrid(const MonteCarloOptions& options) {
  UUQ_CHECK(options.lambda_step > 0.0);
  std::vector<double> lambdas;
  const int count = static_cast<int>(
      std::floor((options.lambda_hi - options.lambda_lo) /
                     options.lambda_step +
                 1e-9)) +
      1;
  lambdas.reserve(static_cast<size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    double lambda = options.lambda_lo + options.lambda_step * i;
    if (std::fabs(lambda) < 1e-12) lambda = 0.0;
    lambdas.push_back(lambda);
  }
  return lambdas;
}

/// The θN grid c..chao in (chao−c)/n_grid_steps increments, with rounding
/// collisions dropped.
std::vector<int64_t> ThetaNGrid(int64_t c, double chao, int steps) {
  const double step = (chao - static_cast<double>(c)) / steps;
  std::vector<int64_t> thetas;
  thetas.reserve(static_cast<size_t>(steps) + 1);
  int64_t previous = -1;
  for (int i = 0; i <= steps; ++i) {
    const int64_t theta_n =
        static_cast<int64_t>(std::llround(static_cast<double>(c) + step * i));
    if (theta_n == previous) continue;
    previous = theta_n;
    thetas.push_back(theta_n);
  }
  return thetas;
}

}  // namespace

double MonteCarloEstimator::SimulatedDistanceSorted(
    int64_t theta_n, double theta_lambda,
    const std::vector<double>& observed_desc, double observed_sum,
    const std::vector<int64_t>& source_sizes, Rng* rng,
    SimulationScratch* scratch) const {
  UUQ_CHECK(rng != nullptr);
  UUQ_CHECK(theta_n >= 1);
  const int n_items = static_cast<int>(theta_n);
  // θλ = 0 is uniform publicity: the partial Fisher-Yates path needs no
  // weight vector at all and costs O(n_i) per source instead of O(θN).
  const bool uniform = theta_lambda == 0.0;
  if (!uniform) {
    scratch->publicity = MonteCarloPublicity(n_items, theta_lambda);
  }
  if (scratch->histogram.size() < static_cast<size_t>(n_items)) {
    scratch->histogram.resize(static_cast<size_t>(n_items), 0.0);
  }

  double total = 0.0;
  for (int run = 0; run < options_.runs_per_point; ++run) {
    scratch->touched.clear();
    const auto visit = [scratch](int idx) {
      double& cell = scratch->histogram[static_cast<size_t>(idx)];
      if (cell == 0.0) scratch->touched.push_back(idx);
      cell += 1.0;
    };
    for (int64_t nj : source_sizes) {
      // Each source samples without replacement from the hypothesized
      // population; a source larger than θN simply exhausts it.
      const int k = static_cast<int>(std::min<int64_t>(nj, theta_n));
      if (uniform) {
        scratch->uniform_sampler.Draw(n_items, k, rng, visit);
      } else {
        scratch->weighted_sampler.Draw(scratch->publicity, k, rng, visit);
      }
    }
    // Collect the non-zero histogram cells (zeroing them for the next run)
    // and compare against the observation under the rank-aligned KL.
    scratch->sim_counts.clear();
    double simulated_sum = 0.0;
    for (int idx : scratch->touched) {
      double& cell = scratch->histogram[static_cast<size_t>(idx)];
      scratch->sim_counts.push_back(cell);
      simulated_sum += cell;
      cell = 0.0;
    }
    std::sort(scratch->sim_counts.begin(), scratch->sim_counts.end(),
              std::greater<double>());
    const size_t support =
        std::max(observed_desc.size(), static_cast<size_t>(n_items));
    total += AlignedKlDivergenceSortedDesc(
        observed_desc.data(), observed_desc.size(), observed_sum,
        scratch->sim_counts.data(), scratch->sim_counts.size(), simulated_sum,
        support, options_.smoothing_epsilon);
  }
  return total / options_.runs_per_point;
}

double MonteCarloEstimator::SimulatedDistance(
    int64_t theta_n, double theta_lambda,
    const std::vector<int64_t>& observed_multiplicities,
    const std::vector<int64_t>& source_sizes, Rng* rng) const {
  // Non-positive multiplicities are dropped: under the rank-aligned KL a
  // zero cell is indistinguishable from a padding cell (both smoothed to
  // epsilon over the max(c, θN) support), and the sorted-desc kernel
  // requires positive counts.
  std::vector<double> observed_desc;
  observed_desc.reserve(observed_multiplicities.size());
  double observed_sum = 0.0;
  for (int64_t m : observed_multiplicities) {
    if (m <= 0) continue;
    observed_desc.push_back(static_cast<double>(m));
    observed_sum += static_cast<double>(m);
  }
  std::sort(observed_desc.begin(), observed_desc.end(),
            std::greater<double>());
  SimulationScratch scratch;
  return SimulatedDistanceSorted(theta_n, theta_lambda, observed_desc,
                                 observed_sum, source_sizes, rng, &scratch);
}

double MonteCarloEstimator::NhatFromColumns(
    const SampleStats& stats, std::vector<double> observed_desc,
    const std::vector<int64_t>& source_sizes) const {
  const int64_t c = stats.c;

  double chao = Chao92Nhat(stats);
  if (!std::isfinite(chao)) {
    chao = static_cast<double>(c) * options_.infinite_nhat_cap_factor;
  }
  if (chao <= static_cast<double>(c) + 0.5) {
    // Degenerate search interval: the sample already looks complete.
    return static_cast<double>(c);
  }

  double observed_sum = 0.0;
  for (double m : observed_desc) observed_sum += m;
  std::sort(observed_desc.begin(), observed_desc.end(),
            std::greater<double>());

  // Grid evaluation (Algorithm 3 lines 3-10), parallel over grid points.
  // Each point's Rng stream is derived serially, in grid order, from the
  // root generator, so results do not depend on the thread count.
  const std::vector<int64_t> thetas =
      ThetaNGrid(c, chao, options_.n_grid_steps);
  const std::vector<double> lambdas = LambdaGrid(options_);

  struct GridPoint {
    int64_t theta_n;
    double lambda;
  };
  std::vector<GridPoint> points;
  points.reserve(thetas.size() * lambdas.size());
  for (int64_t theta_n : thetas) {
    for (double lambda : lambdas) {
      points.push_back({theta_n, lambda});
    }
  }
  if (points.empty()) return static_cast<double>(c);

  Rng root(options_.seed ^ static_cast<uint64_t>(stats.n) * 0x9E3779B9ull);
  const std::vector<Rng> streams =
      root.SplitStreams(static_cast<int>(points.size()));

  std::vector<double> zs(points.size());
  ThreadPool::OrDefault(options_.pool)
      ->ParallelFor(0, static_cast<int64_t>(points.size()), [&](int64_t i) {
        // Grid-point granularity cancellation: a skipped point records an
        // infinite distance (never the argmin) and costs nothing; in-flight
        // points finish and ParallelFor joins, so the scratch stays owned.
        if (options_.cancel.Fired()) {
          zs[static_cast<size_t>(i)] = std::numeric_limits<double>::infinity();
          return;
        }
        // thread_local: per-worker simulation buffers — the MC inner loop's
        // allocation-free contract depends on warm per-thread reuse.
        thread_local SimulationScratch scratch;
        const GridPoint& point = points[static_cast<size_t>(i)];
        Rng rng = streams[static_cast<size_t>(i)];
        zs[static_cast<size_t>(i)] = SimulatedDistanceSorted(
            point.theta_n, point.lambda, observed_desc, observed_sum,
            source_sizes, &rng, &scratch);
      });
  // Cancelled mid-grid: the surface is full of +inf holes, so neither the
  // fit nor the argmin means anything. Return the conservative "sample is
  // complete" clamp; the caller's token tells it to discard the answer.
  if (options_.cancel.Fired()) return static_cast<double>(c);

  std::vector<double> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const GridPoint& point : points) {
    xs.push_back(static_cast<double>(point.theta_n));
    ys.push_back(point.lambda);
  }

  // Curve fit + argmin on the fitted surface (lines 11-12); fall back to the
  // raw grid argmin when the fit is degenerate.
  auto surface = FitQuadraticSurface(xs, ys, zs);
  double n_mc;
  if (surface.ok()) {
    auto [best_n, best_lambda] =
        MinimizeOnBox(surface.value(), static_cast<double>(c), chao,
                      options_.lambda_lo, options_.lambda_hi);
    UUQ_UNUSED(best_lambda);
    n_mc = best_n;
  } else {
    size_t best = 0;
    for (size_t i = 1; i < zs.size(); ++i) {
      if (zs[i] < zs[best]) best = i;
    }
    n_mc = xs[best];
  }
  return std::clamp(n_mc, static_cast<double>(c), chao);
}

double MonteCarloEstimator::EstimateNhat(const IntegratedSample& sample) const {
  if (sample.empty()) return 0.0;
  std::vector<double> observed;
  observed.reserve(sample.entities().size());
  for (const EntityStat& e : sample.entities()) {
    observed.push_back(static_cast<double>(e.multiplicity));
  }
  return NhatFromColumns(SampleStats::FromSample(sample), std::move(observed),
                         sample.SourceSizeVector());
}

double MonteCarloEstimator::EstimateNhat(const ReplicateSample& rep) const {
  if (rep.entities.empty()) return 0.0;
  std::vector<double> observed;
  observed.reserve(rep.entities.size());
  for (const EntityPoint& point : rep.entities) {
    observed.push_back(static_cast<double>(point.multiplicity));
  }
  return NhatFromColumns(SampleStats::FromReplicate(rep), std::move(observed),
                         rep.source_sizes);
}

namespace {

/// §3.4's final mean-substitution step, shared by both entry points.
Estimate ImpactFromNhat(const std::string& name, const SampleStats& stats,
                        double n_hat) {
  Estimate est;
  est.estimator = name;
  est.coverage_ok = stats.Coverage() >= 0.4;
  if (stats.empty()) {
    est.coverage_ok = false;
    return est;
  }
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(stats.c);
  est.missing_value = stats.ValueMean();
  est.delta = est.missing_value * est.missing_count;
  est.finite = std::isfinite(est.delta);
  est.corrected_sum = stats.value_sum + est.delta;
  return est;
}

}  // namespace

Estimate MonteCarloEstimator::EstimateImpact(
    const IntegratedSample& sample) const {
  const SampleStats stats = SampleStats::FromSample(sample);
  return ImpactFromNhat(name(), stats,
                        stats.empty() ? 0.0 : EstimateNhat(sample));
}

Estimate MonteCarloEstimator::EstimateReplicate(
    const ReplicateSample& rep) const {
  const SampleStats stats = SampleStats::FromReplicate(rep);
  return ImpactFromNhat(name(), stats,
                        stats.empty() ? 0.0 : EstimateNhat(rep));
}

}  // namespace uuq
