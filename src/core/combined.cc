#include "core/combined.h"

#include <cmath>

namespace uuq {

Estimate MonteCarloBucketEstimator::EstimateImpact(
    const IntegratedSample& sample) const {
  Estimate est;
  est.estimator = name();
  const SampleStats whole = SampleStats::FromSample(sample);
  est.coverage_ok = whole.Coverage() >= 0.4;
  if (whole.empty()) {
    est.coverage_ok = false;
    return est;
  }

  const std::vector<ValueBucket> buckets =
      partition_source_.ComputeBuckets(sample);
  est.num_buckets = static_cast<int>(buckets.size());

  double delta = 0.0;
  double n_hat = 0.0;
  for (const ValueBucket& b : buckets) {
    // Re-derive the bucket's sub-sample with exact lineage so the MC
    // simulator sees the right per-source contributions.
    const double lo = b.lo, hi = b.hi;
    const IntegratedSample bucket_sample = sample.Filter(
        [lo, hi](const EntityStat& e) {
          return e.value >= lo && e.value <= hi;
        });
    const double bucket_n_hat = mc_.EstimateNhat(bucket_sample);
    const double missing =
        bucket_n_hat - static_cast<double>(b.stats.c);
    delta += b.stats.ValueMean() * missing;
    n_hat += bucket_n_hat;
  }
  est.delta = delta;
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(whole.c);
  est.missing_value = est.missing_count > 0 ? delta / est.missing_count : 0.0;
  est.finite = std::isfinite(delta);
  est.corrected_sum = whole.value_sum + delta;
  return est;
}

}  // namespace uuq
