#include "core/chao92.h"

#include <limits>

namespace uuq {
namespace {

SampleStats ScalarsFromFstats(const FrequencyStatistics& fstats) {
  SampleStats stats;
  stats.n = fstats.n();
  stats.c = fstats.c();
  stats.f1 = fstats.singletons();
  stats.sum_mm1 = fstats.SumIiMinusOneFi();
  return stats;
}

}  // namespace

double Chao92Nhat(const SampleStats& stats) {
  if (stats.empty()) return 0.0;
  const double coverage = stats.Coverage();
  if (coverage <= 0.0) {
    // All singletons: sample coverage is zero, nothing constrains N.
    return std::numeric_limits<double>::infinity();
  }
  const double base = static_cast<double>(stats.c) / coverage;
  const double skew_correction = static_cast<double>(stats.n) *
                                 (1.0 - coverage) / coverage * stats.Gamma2();
  return base + skew_correction;
}

double Chao92Nhat(const FrequencyStatistics& fstats) {
  return Chao92Nhat(ScalarsFromFstats(fstats));
}

double GoodTuringNhat(const SampleStats& stats) {
  if (stats.empty()) return 0.0;
  const double coverage = stats.Coverage();
  if (coverage <= 0.0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(stats.c) / coverage;
}

}  // namespace uuq
