#include "core/chao92.h"

#include <limits>

#include "stats/coverage.h"

namespace uuq {
namespace {

SampleStats ScalarsFromFstats(const FrequencyStatistics& fstats) {
  SampleStats stats;
  stats.n = fstats.n();
  stats.c = fstats.c();
  stats.f1 = fstats.singletons();
  stats.sum_mm1 = fstats.SumIiMinusOneFi();
  return stats;
}

}  // namespace

double Chao92Nhat(const SampleStats& stats) {
  if (stats.empty()) return 0.0;
  // One fused chain instead of Coverage() + Gamma2() each re-deriving Ĉ;
  // c/Ĉ is shared between the base term and γ̂² (coverage.h documents why
  // the hoist is bit-identical to the historical unfused calls).
  const CoverageGammaChain chain =
      FusedCoverageGamma(stats.n, stats.c, stats.f1, stats.sum_mm1);
  if (chain.coverage <= 0.0) {
    // All singletons: sample coverage is zero, nothing constrains N.
    return std::numeric_limits<double>::infinity();
  }
  const double skew_correction = static_cast<double>(stats.n) *
                                 (1.0 - chain.coverage) / chain.coverage *
                                 chain.gamma2;
  return chain.c_over_coverage + skew_correction;
}

double Chao92Nhat(const FrequencyStatistics& fstats) {
  return Chao92Nhat(ScalarsFromFstats(fstats));
}

double GoodTuringNhat(const SampleStats& stats) {
  if (stats.empty()) return 0.0;
  const CoverageGammaChain chain =
      FusedCoverageGamma(stats.n, stats.c, stats.f1, stats.sum_mm1);
  if (chain.coverage <= 0.0) return std::numeric_limits<double>::infinity();
  return chain.c_over_coverage;
}

}  // namespace uuq
