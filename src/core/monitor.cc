#include "core/monitor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace uuq {

ConvergenceMonitor::ConvergenceMonitor(MonitorOptions options)
    : options_(options) {
  UUQ_CHECK_MSG(options_.window >= 2, "window must hold at least 2 points");
  UUQ_CHECK_MSG(options_.stability_threshold > 0.0,
                "stability threshold must be positive");
}

void ConvergenceMonitor::Record(double corrected_estimate) {
  ++recorded_;
  if (!std::isfinite(corrected_estimate)) {
    window_.clear();
    return;
  }
  window_.push_back(corrected_estimate);
  while (window_.size() > static_cast<size_t>(options_.window)) {
    window_.pop_front();
  }
}

double ConvergenceMonitor::RelativeSpread() const {
  if (window_.size() < static_cast<size_t>(options_.window)) {
    return std::numeric_limits<double>::infinity();
  }
  const double lo = *std::min_element(window_.begin(), window_.end());
  const double hi = *std::max_element(window_.begin(), window_.end());
  const double mid = (std::fabs(lo) + std::fabs(hi)) / 2.0;
  if (mid == 0.0) return hi == lo ? 0.0 : std::numeric_limits<double>::infinity();
  return (hi - lo) / mid;
}

bool ConvergenceMonitor::IsStable() const {
  return RelativeSpread() <= options_.stability_threshold;
}

double ConvergenceMonitor::MarginalNewEntityRate(
    const IntegratedSample& sample) {
  if (sample.n() == 0) return 1.0;  // the first answer is always new
  const SampleStats stats = SampleStats::FromSample(sample);
  return static_cast<double>(stats.f1) / static_cast<double>(stats.n);
}

double ConvergenceMonitor::AnswersPerNewEntity(
    const IntegratedSample& sample) {
  const double rate = MarginalNewEntityRate(sample);
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / rate;
}

void ConvergenceMonitor::Reset() {
  window_.clear();
  recorded_ = 0;
}

}  // namespace uuq
