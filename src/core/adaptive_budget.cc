#include "core/adaptive_budget.h"

#include <cmath>
#include <limits>

namespace uuq {

double NormalQuantile(double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) confidence = 0.95;
  const double p = 0.5 * (1.0 + confidence);  // two-sided -> upper tail

  // Acklam's inverse normal CDF approximation: three rational segments
  // (lower tail / central / upper tail), |relative error| < 1.15e-9.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

namespace {

// Sample standard deviation over the finite entries of values[0..count).
// Returns the finite count via *finite_out; sd is 0 for < 2 finite values.
double FiniteSampleSd(const double* values, int count, int* finite_out) {
  int finite = 0;
  double mean = 0.0;
  for (int i = 0; i < count; ++i) {
    if (!std::isfinite(values[i])) continue;
    ++finite;
    mean += (values[i] - mean) / finite;  // streaming mean, no overflow
  }
  *finite_out = finite;
  if (finite < 2) return 0.0;
  double ss = 0.0;
  for (int i = 0; i < count; ++i) {
    if (!std::isfinite(values[i])) continue;
    const double d = values[i] - mean;
    ss += d * d;
  }
  return std::sqrt(ss / (finite - 1));
}

}  // namespace

double EstimatedHalfWidth(const double* values, int count, double confidence) {
  int finite = 0;
  const double sd = FiniteSampleSd(values, count, &finite);
  if (finite < 2) return std::numeric_limits<double>::infinity();
  if (sd == 0.0) return 0.0;
  return NormalQuantile(confidence) * sd / std::sqrt(double(finite));
}

int PlannedReplicates(const double* values, int count, double epsilon,
                      double confidence) {
  if (!(epsilon > 0.0)) return count;
  int finite = 0;
  const double sd = FiniteSampleSd(values, count, &finite);
  if (finite < 2 || sd == 0.0) return count;
  const double z = NormalQuantile(confidence);
  const double needed = std::ceil((z * sd / epsilon) * (z * sd / epsilon));
  if (!(needed > double(count))) return count;
  // Clamp to something sane before int conversion; the engine's cap applies
  // the real ceiling.
  const double capped = needed > 1e9 ? 1e9 : needed;
  return static_cast<int>(capped);
}

}  // namespace uuq
