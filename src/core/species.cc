#include "core/species.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "core/chao92.h"

namespace uuq {

const char* SpeciesEstimatorName(SpeciesEstimator estimator) {
  switch (estimator) {
    case SpeciesEstimator::kChao92:
      return "chao92";
    case SpeciesEstimator::kGoodTuring:
      return "good-turing";
    case SpeciesEstimator::kChao1:
      return "chao1";
    case SpeciesEstimator::kJackknife1:
      return "jackknife1";
    case SpeciesEstimator::kJackknife2:
      return "jackknife2";
    case SpeciesEstimator::kAce:
      return "ace";
  }
  return "?";
}

double Chao1Nhat(const FrequencyStatistics& fstats) {
  if (fstats.empty()) return 0.0;
  const double c = static_cast<double>(fstats.c());
  const double f1 = static_cast<double>(fstats.f(1));
  const double f2 = static_cast<double>(fstats.f(2));
  // Bias-corrected form stays finite when f2 = 0.
  return c + f1 * (f1 - 1.0) / (2.0 * (f2 + 1.0));
}

double Jackknife1Nhat(const FrequencyStatistics& fstats) {
  if (fstats.empty()) return 0.0;
  const double n = static_cast<double>(fstats.n());
  const double c = static_cast<double>(fstats.c());
  const double f1 = static_cast<double>(fstats.f(1));
  if (n <= 1.0) return c;
  return c + f1 * (n - 1.0) / n;
}

double Jackknife2Nhat(const FrequencyStatistics& fstats) {
  if (fstats.empty()) return 0.0;
  const double n = static_cast<double>(fstats.n());
  const double c = static_cast<double>(fstats.c());
  const double f1 = static_cast<double>(fstats.f(1));
  const double f2 = static_cast<double>(fstats.f(2));
  if (n <= 2.0) return Jackknife1Nhat(fstats);
  const double estimate = c + f1 * (2.0 * n - 3.0) / n -
                          f2 * (n - 2.0) * (n - 2.0) / (n * (n - 1.0));
  // The second-order correction can undershoot c on tiny/odd samples;
  // richness estimates below the observed count are meaningless.
  return std::max(estimate, c);
}

double AceNhat(const FrequencyStatistics& fstats, int rare_cutoff) {
  UUQ_CHECK(rare_cutoff >= 1);
  if (fstats.empty()) return 0.0;

  // Split classes into rare (observed <= cutoff) and abundant.
  double c_rare = 0.0, c_abundant = 0.0;
  double n_rare = 0.0;
  double sum_i_im1_fi = 0.0;  // over rare classes only
  for (const auto& [occurrences, classes] : fstats.histogram()) {
    if (occurrences <= rare_cutoff) {
      c_rare += static_cast<double>(classes);
      n_rare += static_cast<double>(occurrences * classes);
      sum_i_im1_fi +=
          static_cast<double>(occurrences) * (occurrences - 1.0) * classes;
    } else {
      c_abundant += static_cast<double>(classes);
    }
  }
  const double f1 = static_cast<double>(fstats.f(1));
  if (n_rare <= 0.0) return static_cast<double>(fstats.c());

  const double coverage = 1.0 - f1 / n_rare;
  if (coverage <= 0.0) {
    // All rare classes are singletons: ACE is undefined; Chao1 is the
    // conventional fallback.
    return Chao1Nhat(fstats);
  }
  const double gamma2_raw =
      (c_rare / coverage) * sum_i_im1_fi / (n_rare * (n_rare - 1.0)) - 1.0;
  const double gamma2 = std::max(gamma2_raw, 0.0);
  return c_abundant + c_rare / coverage + f1 / coverage * gamma2;
}

double SpeciesNhat(SpeciesEstimator estimator,
                   const FrequencyStatistics& fstats) {
  switch (estimator) {
    case SpeciesEstimator::kChao92:
      return Chao92Nhat(fstats);
    case SpeciesEstimator::kGoodTuring: {
      SampleStats stats;
      stats.n = fstats.n();
      stats.c = fstats.c();
      stats.f1 = fstats.singletons();
      stats.sum_mm1 = fstats.SumIiMinusOneFi();
      return GoodTuringNhat(stats);
    }
    case SpeciesEstimator::kChao1:
      return Chao1Nhat(fstats);
    case SpeciesEstimator::kJackknife1:
      return Jackknife1Nhat(fstats);
    case SpeciesEstimator::kJackknife2:
      return Jackknife2Nhat(fstats);
    case SpeciesEstimator::kAce:
      return AceNhat(fstats);
  }
  return 0.0;
}

}  // namespace uuq
