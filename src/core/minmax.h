// MIN/MAX queries under unknown unknowns (paper §5, Figure 7(e)(f)).
//
// Extremes cannot be estimated outright, but we can say WHEN the observed
// extreme is trustworthy: partition the value range into buckets, estimate
// the unknown-unknowns count per bucket, and claim the observed MAX (MIN)
// as the true extreme only when the highest (lowest) bucket's estimated
// unknown count is (near) zero.
#ifndef UUQ_CORE_MINMAX_H_
#define UUQ_CORE_MINMAX_H_

#include <memory>

#include "core/bucket.h"
#include "core/estimate.h"

namespace uuq {

struct ExtremeEstimate {
  bool has_data = false;
  /// True when the extreme bucket's unknown count estimate is below the
  /// claim threshold — the observed extreme is then reported as trustworthy.
  bool claim_true_extreme = false;
  double observed_extreme = 0.0;
  /// Estimated count of unknown unknowns inside the extreme bucket.
  double extreme_bucket_missing = 0.0;
  /// Value range of the extreme bucket.
  double bucket_lo = 0.0;
  double bucket_hi = 0.0;
};

class MinMaxEstimator {
 public:
  /// `claim_threshold`: the extreme is claimed when the extreme bucket's
  /// estimated missing count is strictly below it (0.5 == "rounds to zero").
  explicit MinMaxEstimator(double claim_threshold = 0.5)
      : MinMaxEstimator(std::make_shared<BucketSumEstimator>(),
                        claim_threshold) {}
  MinMaxEstimator(std::shared_ptr<const BucketSumEstimator> bucket,
                  double claim_threshold)
      : bucket_(std::move(bucket)), claim_threshold_(claim_threshold) {}

  ExtremeEstimate EstimateMax(const IntegratedSample& sample) const;
  ExtremeEstimate EstimateMin(const IntegratedSample& sample) const;

  /// Columnar replicate forms (bootstrap distribution of the observed
  /// extreme and of the extreme-bucket unknown count).
  ExtremeEstimate EstimateMax(const ReplicateSample& rep) const;
  ExtremeEstimate EstimateMin(const ReplicateSample& rep) const;

 private:
  ExtremeEstimate Estimate(const IntegratedSample& sample, bool want_max) const;
  ExtremeEstimate FromBuckets(const std::vector<ValueBucket>& buckets,
                              bool want_max) const;

  std::shared_ptr<const BucketSumEstimator> bucket_;
  double claim_threshold_;
};

}  // namespace uuq

#endif  // UUQ_CORE_MINMAX_H_
