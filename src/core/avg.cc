#include "core/avg.h"

#include <cmath>

namespace uuq {

Estimate AvgEstimator::FromBuckets(
    const SampleStats& stats, const std::vector<ValueBucket>& buckets) const {
  Estimate est;
  est.estimator = "avg[" + bucket_->name() + "]";
  est.coverage_ok = stats.Coverage() >= 0.4;
  if (stats.empty()) {
    est.coverage_ok = false;
    return est;
  }
  const double observed_avg = stats.ValueMean();
  est.num_buckets = static_cast<int>(buckets.size());

  double corrected_total = 0.0;
  double corrected_count = 0.0;
  bool usable = !buckets.empty();
  for (const ValueBucket& b : buckets) {
    if (!std::isfinite(b.estimate.n_hat) || !std::isfinite(b.estimate.delta)) {
      usable = false;
      break;
    }
    corrected_total += b.stats.value_sum + b.estimate.delta;
    corrected_count += b.estimate.n_hat;
  }

  if (!usable || corrected_count <= 0.0) {
    // Degenerate: report the observed mean, flagged as non-finite estimate.
    est.corrected_sum = observed_avg;
    est.delta = 0.0;
    est.n_hat = static_cast<double>(stats.c);
    est.finite = false;
    return est;
  }

  est.corrected_sum = corrected_total / corrected_count;
  est.delta = est.corrected_sum - observed_avg;
  est.n_hat = corrected_count;
  est.missing_count = corrected_count - static_cast<double>(stats.c);
  est.finite = std::isfinite(est.corrected_sum);
  return est;
}

Estimate AvgEstimator::EstimateAvg(const IntegratedSample& sample) const {
  return FromBuckets(SampleStats::FromSample(sample),
                     bucket_->ComputeBuckets(sample));
}

Estimate AvgEstimator::EstimateAvg(const ReplicateSample& rep) const {
  return FromBuckets(SampleStats::FromReplicate(rep),
                     bucket_->ComputeBuckets(rep));
}

}  // namespace uuq
