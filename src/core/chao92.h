// Chao92 species-richness estimation (paper §3.1.1, Eq. 7) and the plain
// Good-Turing variant (γ̂² = 0).
//
//   N̂_Chao92 = c/Ĉ + n(1−Ĉ)/Ĉ · γ̂²
//
// Degenerate cases follow the paper's treatment: an empty sample estimates 0;
// a sample of only singletons (Ĉ = 0) estimates +infinity ("the estimate
// goes to infinite ... due to division-by-zero", §3.3.1).
#ifndef UUQ_CORE_CHAO92_H_
#define UUQ_CORE_CHAO92_H_

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/estimate.h"
#include "stats/fstats.h"

namespace uuq {

/// N̂ via Chao92 from scalar sufficient statistics.
double Chao92Nhat(const SampleStats& stats);

/// Multiplication-form conservative pre-filter for the batched split-scan
/// kernels (`StatsSumEstimator::DeltaFromStatsBatch`).
///
/// Both closed-form estimators have the shape Δ = v̄ · (N̂ − c) with a
/// nonnegative missing count, and dropping Chao92's (also nonnegative)
/// skew-correction term gives the division-free real-arithmetic bound
///
///   |Δ| ≥ scaled_mass / (n − f1)
///
/// where scaled_mass is |φK|·f1 for the naive estimator (v̄ = φK/c,
/// N̂ − c ≥ c·f1/(n−f1)) and |φf1|·c for the frequency estimator
/// (v̄ = φf1/f1, same missing-count bound). Rearranged into multiplication
/// form, `scaled_mass ≥ needed·(n−f1)` therefore certifies |Δ| ≥ needed
/// without evaluating any of the coverage/γ² divisions — which lets the
/// batched scan skip the exact FP chain for candidates that provably cannot
/// beat the running δmin.
///
/// CONSERVATISM. The certificate must hold for the scan's exact
/// floating-point |Δ| (the value the scalar chain would compute), not just
/// the real-arithmetic one. The chain's worst relative divergence from real
/// arithmetic is dominated by the N̂ − c cancellation and is bounded by a
/// small multiple of eps·n/min(f1, n−f1) ≤ eps·n; deflating the left-hand
/// side by kSlack = 1e-5 and refusing to certify past n ≥ 2^30 (where
/// eps·8n ≈ 1.9e-6 approaches the slack) keeps the filter strictly
/// conservative with ~5× margin. A rejected certificate only costs one
/// exact evaluation; a wrong certificate would change a partition, so the
/// filter errs hard toward rejection (the `delta_batch_test` fuzz pins that
/// it never rejects a candidate below its threshold). n == f1 (all
/// singletons) certifies any finite threshold: the exact chain produces a
/// non-finite Δ, which the scan normalizes to +infinity.
///
/// Deliberately branch-free (single-& conjunction, no short-circuits) so
/// the batched kernels inline it into their vectorized lane loops; scaled
/// mass must be nonnegative (callers fabs their value proxy) and NaN inputs
/// never certify (every comparison is false). `n`/`f1` are the count
/// fields as doubles, per the StatsBatchView cast convention.
inline bool Chao92PreFilterCertifies(double scaled_mass, double n, double f1,
                                     double needed) {
  constexpr double kSlack = 1e-5;
  constexpr double kMaxN = 1073741824.0;  // 2^30
  constexpr double kMaxFinite = std::numeric_limits<double>::max();
  const bool in_domain = (needed > 0.0) & (needed <= kMaxFinite) &
                         (scaled_mass <= kMaxFinite) & (n < kMaxN);
  return in_domain & (scaled_mass * (1.0 - kSlack) >= needed * (n - f1));
}

/// N̂ via Chao92 from full f-statistics (same value; convenience overload).
double Chao92Nhat(const FrequencyStatistics& fstats);

/// N̂ via the sample-coverage-only (Good-Turing) estimator c/Ĉ, i.e. Chao92
/// with γ̂² forced to 0 — converges for skewed publicities too, just slower
/// (§3.2).
double GoodTuringNhat(const SampleStats& stats);

/// Branch-free all-double lane form of the fused coverage/γ² chain + both
/// N̂ estimators — the ONE copy of the expression chain the batched kernels
/// (naive.cc / frequency.cc) inline into their vectorized loops. Every
/// conditional of the scalar path is a value-equivalent blend selecting
/// among the SAME IEEE expression results, so each lane is bit-identical to
/// FusedCoverageGamma + Chao92Nhat/GoodTuringNhat on cast-exact inputs:
///
///  * Ĉ clamped to [0, 1] via two compare blends (NaN from a degenerate
///    n == 0 lane just rides through — callers mask those lanes);
///  * γ̂² forced to 0 for n < 2 or Ĉ ≤ 0, exactly like FusedCoverageGamma
///    (the dispersion division for n == 1 produces a discarded NaN/inf);
///  * both N̂ forms blended to +inf when Ĉ ≤ 0 (the all-singleton
///    divergence), discarding the well-defined IEEE inf/NaN the fused
///    base+skew sum produces at Ĉ = 0.
///
/// Keeping this chain in one place is part of the bit-identity contract:
/// two hand-maintained copies could drift apart by a single reassociation
/// and silently break batched-vs-scalar equality for one estimator only
/// (tests/delta_batch_test.cc would catch it; this makes it unrepresentable).
struct Chao92Lane {
  double n_hat = 0.0;              ///< Chao92 N̂; +inf when Ĉ ≤ 0
  double good_turing_n_hat = 0.0;  ///< c/Ĉ (Eq. 10 form); +inf when Ĉ ≤ 0
};

inline Chao92Lane Chao92NhatLane(double nd, double cd, double f1d,
                                 double mm1d) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double cov = 1.0 - f1d / nd;
  cov = cov < 0.0 ? 0.0 : cov;
  cov = cov > 1.0 ? 1.0 : cov;
  const double c_over_cov = cd / cov;
  const double dispersion = mm1d / (nd * (nd - 1.0));
  double gamma2 = c_over_cov * dispersion - 1.0;
  gamma2 = gamma2 > 0.0 ? gamma2 : 0.0;
  gamma2 = nd >= 2.0 ? gamma2 : 0.0;
  gamma2 = cov > 0.0 ? gamma2 : 0.0;
  Chao92Lane out;
  out.n_hat = c_over_cov + nd * (1.0 - cov) / cov * gamma2;
  out.n_hat = cov <= 0.0 ? kInf : out.n_hat;
  out.good_turing_n_hat = cov <= 0.0 ? kInf : c_over_cov;
  return out;
}

}  // namespace uuq

#endif  // UUQ_CORE_CHAO92_H_
