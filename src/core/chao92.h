// Chao92 species-richness estimation (paper §3.1.1, Eq. 7) and the plain
// Good-Turing variant (γ̂² = 0).
//
//   N̂_Chao92 = c/Ĉ + n(1−Ĉ)/Ĉ · γ̂²
//
// Degenerate cases follow the paper's treatment: an empty sample estimates 0;
// a sample of only singletons (Ĉ = 0) estimates +infinity ("the estimate
// goes to infinite ... due to division-by-zero", §3.3.1).
#ifndef UUQ_CORE_CHAO92_H_
#define UUQ_CORE_CHAO92_H_

#include "core/estimate.h"
#include "stats/fstats.h"

namespace uuq {

/// N̂ via Chao92 from scalar sufficient statistics.
double Chao92Nhat(const SampleStats& stats);

/// N̂ via Chao92 from full f-statistics (same value; convenience overload).
double Chao92Nhat(const FrequencyStatistics& fstats);

/// N̂ via the sample-coverage-only (Good-Turing) estimator c/Ĉ, i.e. Chao92
/// with γ̂² forced to 0 — converges for skewed publicities too, just slower
/// (§3.2).
double GoodTuringNhat(const SampleStats& stats);

}  // namespace uuq

#endif  // UUQ_CORE_CHAO92_H_
