#include "core/minmax.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace uuq {

ExtremeEstimate MinMaxEstimator::Estimate(const IntegratedSample& sample,
                                          bool want_max) const {
  return FromBuckets(bucket_->ComputeBuckets(sample), want_max);
}

ExtremeEstimate MinMaxEstimator::FromBuckets(
    const std::vector<ValueBucket>& buckets, bool want_max) const {
  ExtremeEstimate out;
  if (buckets.empty()) return out;
  out.has_data = true;

  // Buckets come back in ascending value order.
  const ValueBucket& extreme = want_max ? buckets.back() : buckets.front();
  out.observed_extreme = want_max ? extreme.hi : extreme.lo;
  out.bucket_lo = extreme.lo;
  out.bucket_hi = extreme.hi;

  const double missing = extreme.estimate.missing_count;
  out.extreme_bucket_missing = std::isfinite(missing)
                                   ? std::max(missing, 0.0)
                                   : std::numeric_limits<double>::infinity();
  out.claim_true_extreme = out.extreme_bucket_missing < claim_threshold_;
  return out;
}

ExtremeEstimate MinMaxEstimator::EstimateMax(
    const IntegratedSample& sample) const {
  return Estimate(sample, /*want_max=*/true);
}

ExtremeEstimate MinMaxEstimator::EstimateMin(
    const IntegratedSample& sample) const {
  return Estimate(sample, /*want_max=*/false);
}

ExtremeEstimate MinMaxEstimator::EstimateMax(const ReplicateSample& rep) const {
  return FromBuckets(bucket_->ComputeBuckets(rep), /*want_max=*/true);
}

ExtremeEstimate MinMaxEstimator::EstimateMin(const ReplicateSample& rep) const {
  return FromBuckets(bucket_->ComputeBuckets(rep), /*want_max=*/false);
}

}  // namespace uuq
