// Precision-targeted adaptive replicate budgets (pilot-then-refine).
//
// A fixed bootstrap budget (B=48 in the serving layer) is a guess: it
// wastes replicates on easy samples whose replicate ensemble settles in a
// dozen draws, and under-resolves hard ones. This module turns the
// replicate count into a precision SLO knob: run a pilot block, estimate
// the replicate spread, then stop early or escalate B in blocks until the
// replicate-mean Monte Carlo half-width meets a caller-specified ±ε at a
// confidence level — or a hard `max_replicates` / deadline cap trips,
// reported as `precision_degraded` alongside the serving degradation
// ladder.
//
// WHAT ε BOUNDS. With replicate standard deviation s over B draws, the
// Monte Carlo standard error of the replicate mean is s/√B, so the stop
// test is z·s/√B ≤ ε (z the two-sided normal quantile of the confidence
// level) and the budget it implies is B* = ceil((z·s/ε)²) — the AIDB
// pilot-samples → variance-estimate → additional-samples shape; the
// engine jumps to B* (clamped to at least one escalation block) rather
// than creeping. ε is therefore a RESOLUTION target: it bounds the Monte
// Carlo noise the finite replicate budget adds, i.e. how precisely the B
// replicates pin down the center of the resampling distribution. It does
// NOT bound the reported percentile interval's half-width (≈ z·s): that
// width measures the data's own sampling variability and does not shrink
// as B grows — no replicate budget can narrow it.
//
// Determinism contract (pinned by tests/adaptive_budget_test.cc and the
// bench verify passes): adaptive runs draw replicate streams incrementally
// from the same serial `Rng::Split()` derivation a fixed-B run uses, so
// the pilot is bit-identical to the first `pilot_replicates` of any larger
// run, and an adaptive run that lands on final budget B produces the
// byte-identical interval of a fixed-B run at that B — for every thread
// count, block size, and mega-batch setting.
#ifndef UUQ_CORE_ADAPTIVE_BUDGET_H_
#define UUQ_CORE_ADAPTIVE_BUDGET_H_

namespace uuq {

/// Caller-facing knobs for the pilot-then-refine loop. Carried on
/// `BootstrapOptions::adaptive`; inert unless `enabled`.
struct AdaptiveBudgetOptions {
  /// Master switch. When off, the engine runs the classic fixed
  /// `BootstrapOptions::replicates` budget and every other field is ignored.
  bool enabled = false;
  /// Target Monte Carlo half-width: stop once z·s/√B — the resolution at
  /// which the B replicates pin down the replicate mean, NOT the reported
  /// percentile interval's width (header comment) — is ≤ epsilon. Must be
  /// > 0 when enabled (there is no meaningful "free" precision target);
  /// the engine CHECKs it.
  double epsilon = 0.0;
  /// Two-sided confidence level for the Monte Carlo half-width estimate.
  /// Values outside (0,1) fall back to 0.95 — the engine sanitizes rather
  /// than CHECKs, because this field can carry a request-supplied value
  /// (QueryService per-query `confidence`) and a request must never be
  /// able to abort the process.
  double confidence = 0.95;
  /// Pilot block size: replicates always run before the first stop test.
  int pilot_replicates = 16;
  /// Minimum escalation step. The planner may jump further (toward the
  /// variance-implied budget) but never by less than one block, so noisy
  /// half-width estimates cannot stall the loop in +1 increments.
  int escalation_block = 16;
  /// Hard budget cap. <= 0 means "use BootstrapOptions::replicates" as the
  /// cap. Hitting the cap without meeting epsilon reports
  /// `precision_degraded` (the answer is still the best available interval).
  int max_replicates = 0;
};

/// What the adaptive loop actually did — attached to `BootstrapInterval::
/// adaptive` so the serving layer can report `precision_degraded` and
/// telemetry (replicates used, escalations) without re-deriving anything.
struct AdaptiveBudgetReport {
  bool enabled = false;
  /// The estimated Monte Carlo half-width (z·s/√B) met epsilon.
  bool target_met = false;
  /// The cap (or a mid-escalation deadline) stopped the loop before the
  /// target was met. Mutually exclusive with target_met.
  bool precision_degraded = false;
  /// Final budget: the interval equals a fixed-B run at exactly this B.
  int replicates_used = 0;
  int pilot_replicates = 0;
  /// Escalation rounds taken after the pilot (0 = pilot sufficed).
  int escalations = 0;
  /// The epsilon the loop ran against (0 when disabled).
  double epsilon = 0.0;
  /// Last Monte Carlo half-width estimate z·s/√B (+inf when unestimable:
  /// < 2 finite values). Not the percentile interval's (hi-lo)/2.
  double half_width = 0.0;
};

/// Two-sided standard-normal quantile z with P(|Z| <= z) = confidence,
/// i.e. the inverse CDF at (1+confidence)/2. Acklam's rational
/// approximation (|relative error| < 1.15e-9 — far inside the noise of a
/// variance estimated from tens of replicates). Out-of-range confidence
/// falls back to 0.95. Pure function: bit-identical everywhere.
double NormalQuantile(double confidence);

/// Normal-approximation Monte Carlo half-width of the replicate mean:
/// z·sd/√k over the finite entries of values[0..count) — the adaptive
/// stop-test quantity (header comment). Returns +inf when fewer than two
/// finite values exist (nothing to estimate spread from) and 0 when the
/// finite values are all identical. Pure function of the value prefix.
double EstimatedHalfWidth(const double* values, int count, double confidence);

/// The AIDB-style additional-samples formula: the total budget B* =
/// ceil((z·sd/ε)²) implied by the current spread estimate. Returns `count`
/// (no growth signal) when the spread is unestimable or already zero, so
/// callers fall back to fixed-block escalation. Never returns < count.
int PlannedReplicates(const double* values, int count, double epsilon,
                      double confidence);

}  // namespace uuq

#endif  // UUQ_CORE_ADAPTIVE_BUDGET_H_
