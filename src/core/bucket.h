// The bucket estimator (paper §3.3, Appendix B).
//
// Publicity-value correlation biases whole-sample value estimates, so the
// value range is divided into buckets and the impact is estimated per bucket
// with an inner estimator (naive or frequency), then aggregated (Eq. 11).
//
// Three partitioning strategies:
//  * equi-width  — fixed number of equal value-range buckets (§3.3.1)
//  * equi-height — fixed number of equal-cardinality buckets (App. B)
//  * dynamic     — Algorithm 1: recursively split only while the total
//                  |Δ| estimate DECREASES (the conservative rule §3.3.2)
//
// Slices are evaluated in O(1) via prefix sums over the value-sorted entity
// array; the dynamic algorithm therefore costs O(u) per candidate-split scan
// instead of O(u·size).
#ifndef UUQ_CORE_BUCKET_H_
#define UUQ_CORE_BUCKET_H_

#include <memory>
#include <vector>

#include "core/estimate.h"

namespace uuq {

class ThreadPool;

/// A value-range bucket with its slice statistics and inner estimate.
struct ValueBucket {
  double lo = 0.0;  ///< smallest fused value in the bucket
  double hi = 0.0;  ///< largest fused value in the bucket
  SampleStats stats;
  Estimate estimate;
};

/// Prefix-sum index over a value-sorted entity array; Slice(i, j) returns the
/// sufficient statistics of entities [i, j) in O(1).
///
/// Stores only the (value, multiplicity) points the bucket math reads — no
/// keys, no categories — so it is equally at home indexing a full sample's
/// entities or a columnar bootstrap replicate.
class SortedEntityIndex {
 public:
  explicit SortedEntityIndex(const std::vector<EntityStat>& entities);
  explicit SortedEntityIndex(std::vector<EntityPoint> points);

  size_t size() const { return points_.size(); }
  const std::vector<EntityPoint>& entities() const { return points_; }

  /// Stats of the half-open slice [begin, end).
  SampleStats Slice(size_t begin, size_t end) const;

  /// Index one past the last entity sharing entities()[i].value (the
  /// smallest legal split point strictly after position i).
  size_t UpperBoundOfValueAt(size_t i) const;

 private:
  void BuildPrefix();

  std::vector<EntityPoint> points_;  // sorted ascending by value
  // prefix_[k] = stats over points_[0..k)
  std::vector<SampleStats> prefix_;
};

/// Partitioning strategy interface: returns bucket boundaries as half-open
/// index ranges over the sorted entities.
class BucketPartitioner {
 public:
  virtual ~BucketPartitioner() = default;
  virtual std::string name() const = 0;
  /// Returns slice boundaries: a sorted vector b_0=0 < b_1 < ... < b_k=size.
  virtual std::vector<size_t> Partition(const SortedEntityIndex& index,
                                        const StatsSumEstimator& inner)
      const = 0;
};

/// §3.3.1: `num_buckets` equal-width value ranges over [min, max].
class EquiWidthPartitioner final : public BucketPartitioner {
 public:
  explicit EquiWidthPartitioner(int num_buckets);
  std::string name() const override;
  std::vector<size_t> Partition(const SortedEntityIndex& index,
                                const StatsSumEstimator& inner) const override;

 private:
  int num_buckets_;
};

/// Appendix B: `num_buckets` buckets with (near-)equal entity counts.
class EquiHeightPartitioner final : public BucketPartitioner {
 public:
  explicit EquiHeightPartitioner(int num_buckets);
  std::string name() const override;
  std::vector<size_t> Partition(const SortedEntityIndex& index,
                                const StatsSumEstimator& inner) const override;

 private:
  int num_buckets_;
};

/// §3.3.2 Algorithm 1: recursively split a bucket at the unique value that
/// minimizes the global Σ|Δ|; stop when no split lowers it.
///
/// The candidate-split scan of each bucket (one |Δ(left)| + |Δ(right)|
/// evaluation per distinct value) runs on a ThreadPool when the bucket has
/// enough candidates to amortize the dispatch; each candidate writes only
/// its own slot and the argmin keeps the serial first-minimum tie-break, so
/// the partition is identical for every thread count.
class DynamicPartitioner final : public BucketPartitioner {
 public:
  DynamicPartitioner() = default;
  /// nullptr means ThreadPool::Default().
  explicit DynamicPartitioner(ThreadPool* pool) : pool_(pool) {}

  std::string name() const override { return "dynamic"; }
  std::vector<size_t> Partition(const SortedEntityIndex& index,
                                const StatsSumEstimator& inner) const override;

 private:
  ThreadPool* pool_ = nullptr;
};

/// The composed bucket estimator (Eq. 11): Δ = Σ_b Δ(b).
class BucketSumEstimator final : public SumEstimator {
 public:
  /// Defaults to the paper's best configuration: dynamic partitioning with
  /// the naive inner estimator.
  BucketSumEstimator();
  BucketSumEstimator(std::shared_ptr<const BucketPartitioner> partitioner,
                     std::shared_ptr<const StatsSumEstimator> inner);

  std::string name() const override;
  Estimate EstimateImpact(const IntegratedSample& sample) const override;

  /// Columnar replicate path (bit-identical to EstimateImpact on the
  /// materialized replicate — the whole-sample stats fold runs in
  /// first-touch order and the index sort sees the same sequence).
  bool SupportsReplicates() const override { return true; }
  Estimate EstimateReplicate(const ReplicateSample& rep) const override;

  /// The full per-bucket breakdown (used by AVG and MIN/MAX, §5, and by the
  /// static-bucket ablation benches).
  std::vector<ValueBucket> ComputeBuckets(const IntegratedSample& sample) const;
  /// Same, over a columnar replicate (AVG/MIN-MAX bootstrap).
  std::vector<ValueBucket> ComputeBuckets(const ReplicateSample& rep) const;
  /// Shared core: buckets of an already-built index.
  std::vector<ValueBucket> ComputeBuckets(const SortedEntityIndex& index) const;

  const BucketPartitioner& partitioner() const { return *partitioner_; }
  const StatsSumEstimator& inner() const { return *inner_; }

 private:
  std::shared_ptr<const BucketPartitioner> partitioner_;
  std::shared_ptr<const StatsSumEstimator> inner_;
};

}  // namespace uuq

#endif  // UUQ_CORE_BUCKET_H_
