// The bucket estimator (paper §3.3, Appendix B).
//
// Publicity-value correlation biases whole-sample value estimates, so the
// value range is divided into buckets and the impact is estimated per bucket
// with an inner estimator (naive or frequency), then aggregated (Eq. 11).
//
// Three partitioning strategies:
//  * equi-width  — fixed number of equal value-range buckets (§3.3.1)
//  * equi-height — fixed number of equal-cardinality buckets (App. B)
//  * dynamic     — Algorithm 1: recursively split only while the total
//                  |Δ| estimate DECREASES (the conservative rule §3.3.2)
//
// Slices are evaluated in O(1) via prefix sums over the value-sorted entity
// array; the dynamic algorithm therefore costs O(u) per candidate-split scan
// instead of O(u·size).
//
// REPLICATE HOT PATH. Bootstrap/jackknife replicates re-run the whole
// estimator B times; IndexScratch makes those runs allocation-free: the
// sorted index, prefix array, partition worklists, and bucket vector are
// all reused, and when the replicate carries its SampleView the re-sort is
// INCREMENTAL — points are gathered in the view's precomputed rank order
// (a replicate perturbs multiplicities, not the entity ordering, so the
// gather is already nearly sorted) and fixed up with an adaptive insertion
// pass. The index orders points canonically by (value, multiplicity), which
// makes the sorted array — and every prefix sum — independent of the input
// permutation, so the scratch path is bit-identical to a fresh index.
#ifndef UUQ_CORE_BUCKET_H_
#define UUQ_CORE_BUCKET_H_

#include <memory>
#include <vector>

#include "common/cancel.h"
#include "common/macros.h"
#include "core/estimate.h"

namespace uuq {

class ThreadPool;
class IndexScratch;

/// A value-range bucket with its slice statistics and inner estimate.
struct ValueBucket {
  double lo = 0.0;  ///< smallest fused value in the bucket
  double hi = 0.0;  ///< largest fused value in the bucket
  SampleStats stats;
  Estimate estimate;
};

/// Prefix-sum index over a value-sorted entity array; Slice(i, j) returns the
/// sufficient statistics of entities [i, j) in O(1).
///
/// Stores only the (value, multiplicity) points the bucket math reads — no
/// keys, no categories — so it is equally at home indexing a full sample's
/// entities or a columnar bootstrap replicate. A default-constructed index
/// is an empty reusable shell: Clear()/Append()/Finalize() rebuild it in
/// place without allocating once its buffers are warm.
class SortedEntityIndex {
 public:
  SortedEntityIndex() = default;
  explicit SortedEntityIndex(const std::vector<EntityStat>& entities);
  explicit SortedEntityIndex(std::vector<EntityPoint> points);

  /// Canonical point order: ascending (value, multiplicity). Total up to
  /// indistinguishable points, so any input permutation of the same point
  /// multiset sorts to the same array content — the bit-identity guarantee
  /// behind the scratch-reuse and incremental-re-sort paths.
  static bool PointLess(const EntityPoint& a, const EntityPoint& b) {
    return a.value < b.value ||
           (a.value == b.value && a.multiplicity < b.multiplicity);
  }

  /// In-place rebuild, step 1: drop all points (capacity retained).
  void Clear() { points_.clear(); }
  /// In-place rebuild, step 2: append one point (any order).
  void Append(const EntityPoint& point) { points_.push_back(point); }
  /// In-place rebuild, step 3: sort + rebuild the prefix array, reusing the
  /// internal buffers. `nearly_sorted` selects an adaptive insertion sort
  /// (O(points + inversions), falling back to std::sort past a shift
  /// budget); the final content is canonical either way.
  void Finalize(bool nearly_sorted);

  size_t size() const { return points_.size(); }
  const std::vector<EntityPoint>& entities() const { return points_; }

  /// Stats of the half-open slice [begin, end).
  SampleStats Slice(size_t begin, size_t end) const;

  /// The batched split scan's gather primitive: writes slice [begin, end)'s
  /// stats into lane `lane` of the given SoA columns as doubles (the
  /// StatsBatchView cast convention) and returns the slice's n. Identical
  /// values to Slice(), minus the struct round-trip and the value_sum_sq
  /// column no Δ expression reads.
  int64_t SliceColumnsInto(size_t begin, size_t end, size_t lane,
                           double* UUQ_RESTRICT n_col,
                           double* UUQ_RESTRICT c_col,
                           double* UUQ_RESTRICT f1_col,
                           double* UUQ_RESTRICT mm1_col,
                           double* UUQ_RESTRICT value_sum_col,
                           double* UUQ_RESTRICT singleton_sum_col) const {
    const SampleStats& hi = prefix_[end];
    const SampleStats& lo = prefix_[begin];
    const int64_t n = hi.n - lo.n;
    n_col[lane] = static_cast<double>(n);
    c_col[lane] = static_cast<double>(hi.c - lo.c);
    f1_col[lane] = static_cast<double>(hi.f1 - lo.f1);
    mm1_col[lane] = static_cast<double>(hi.sum_mm1 - lo.sum_mm1);
    value_sum_col[lane] = hi.value_sum - lo.value_sum;
    singleton_sum_col[lane] = hi.singleton_sum - lo.singleton_sum;
    return n;
  }

  /// Index one past the last entity sharing entities()[i].value (the
  /// smallest legal split point strictly after position i).
  size_t UpperBoundOfValueAt(size_t i) const;

  /// Releases ALL internal capacity: the index returns to a freshly
  /// constructed empty shell (the scratch trim hook, scratch_metrics.h).
  void Release();
  /// Approximate resident capacity of the internal arrays, in bytes.
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(points_.capacity() * sizeof(EntityPoint) +
                                prefix_.capacity() * sizeof(SampleStats));
  }

 private:
  std::vector<EntityPoint> points_;  // sorted ascending by (value, mult)
  // prefix_[k] = stats over points_[0..k)
  std::vector<SampleStats> prefix_;
};

/// Reusable buffers for BucketPartitioner::PartitionInto: the worklists,
/// the candidate-split scan columns, and the dynamic partitioner's
/// split-memo arena. One per thread; contents are transient per call.
///
/// MEMOIZATION. When the dynamic scan splits a bucket, both child slices
/// were already fully evaluated as candidates of the parent scan: the
/// winning cut's |Δ(left)| / |Δ(right)| become the children's own bucket
/// deltas, and every other candidate's half on the child's side of the cut
/// is that child's scan half too (a split never changes the equal-value run
/// boundaries, so the child's candidate cut list is a sub-range of the
/// parent's). The arena carries those cuts and half-deltas from scan to
/// scan; NaN marks a half the parent never evaluated (pruned), which the
/// child recomputes fresh. Since a memoized value is the result of the
/// exact Slice + DeltaFromStats expression the child would run, the
/// memoized partition is bit-identical to the scan-everything one. The
/// arena is append-only per partition call and capped at O(index size):
/// past the cap (pathological peel-one-run-per-split shapes would grow it
/// quadratically) children are pushed without a memo slice and evaluate
/// fresh — same results, bounded scratch.
struct PartitionScratch {
  /// One dynamic worklist entry: a bucket plus what the parent scan already
  /// learned about it.
  struct Bucket {
    size_t begin = 0;
    size_t end = 0;
    /// Memoized |Δ(begin, end)| (the parent candidate's winning half; the
    /// root computes it directly).
    double delta = 0.0;
    /// Arena slice [memo_begin, memo_end): candidate cuts inherited from
    /// the parent scan and, aligned with them, the known half-deltas.
    size_t memo_begin = 0;
    size_t memo_end = 0;
    /// True when the inherited halves are the LEFT halves |Δ(begin, cut)|
    /// (this bucket was a left child); false for |Δ(cut, end)|.
    bool memo_is_left = false;
    bool has_memo = false;
  };

  std::vector<size_t> cuts;        ///< current scan's candidate cut positions
  std::vector<double> left_half;   ///< |Δ(begin,cut)| per candidate; NaN unknown
  std::vector<double> right_half;  ///< |Δ(cut,end)| per candidate; NaN unknown
  std::vector<double> candidates;  ///< per-candidate objective totals
  std::vector<Bucket> todo;        ///< FIFO worklist (head index)
  std::vector<std::pair<size_t, size_t>> done;  ///< finalized buckets
  // Split-memo arena (append-only per partition call), addressed by
  // Bucket::memo_begin/memo_end.
  std::vector<size_t> memo_cuts;
  std::vector<double> memo_delta;
  // Batched-scan gather columns (SplitScanMode::kBatched): candidate i's
  // LEFT half at lane i, its RIGHT half at lane num_cuts + i. The stats
  // columns form the StatsBatchView handed to DeltaFromStatsBatch (all
  // doubles, holding static_cast<double> of the integer fields — the view's
  // cast convention); lane_needed carries the per-lane pre-filter threshold
  // and lane_delta receives the kernel output (normalized |Δ|, NaN =
  // certified prunable). A known or bound-pruned half marks its lane
  // inactive with n = 0 (the kernel's empty-stats convention), so the
  // gather is pure indexed stores into high-water-sized columns — no
  // push_back bookkeeping on the replicate hot path.
  std::vector<double> lane_n;
  std::vector<double> lane_c;
  std::vector<double> lane_f1;
  std::vector<double> lane_mm1;
  std::vector<double> lane_value_sum;
  std::vector<double> lane_singleton_sum;
  std::vector<double> lane_needed;
  std::vector<double> lane_delta;
  std::vector<uint32_t> lane_map;  ///< serial path: compact lane → candidate
  /// Cross-call probe hint: the previous partition's winning root cut
  /// (0 = none). Bootstrap replicates are near-identical workloads, so the
  /// candidate nearest the last winner is an excellent probe — its total
  /// seeds the strict pruning reference before the root scan's first block.
  /// PURELY an evaluation-count optimization: any candidate's total is a
  /// valid upper bound on the scan minimum whatever heuristic picked it, so
  /// partitions are bit-identical with or without the hint (and therefore
  /// independent of what this scratch evaluated before — the one
  /// deliberately persistent field in an otherwise transient scratch).
  size_t root_cut_hint = 0;
  /// Cross-replicate mega-batch handoff: the ROOT scan's left-half |Δ|
  /// values, one per root candidate cut, precomputed by
  /// BucketSumEstimator::EstimateReplicateBatch through the same
  /// SliceColumnsInto gather + DeltaFromStatsBatch kernel the root scan
  /// itself would run — value-identical because the root's phase 1 always
  /// gathers EVERY left lane (there is no known half to prune against at
  /// the root) and the kernel is a pure per-lane function. `valid` is a
  /// one-shot arm: PartitionInto consumes + clears it on entry and only
  /// uses the cache when the scan shape matches (batched serial root scan,
  /// no inherited memo, cut count agreeing with the cache length); every
  /// mismatch falls back to the normal gather, so a stale or foreign cache
  /// can never change results — only waste the precomputation.
  std::vector<double> root_left_cache;
  bool root_left_cache_valid = false;
};

/// Partitioning strategy interface: returns bucket boundaries as half-open
/// index ranges over the sorted entities.
class BucketPartitioner {
 public:
  virtual ~BucketPartitioner() = default;
  virtual std::string name() const = 0;
  /// Writes slice boundaries b_0=0 < b_1 < ... < b_k=size into *bounds,
  /// reusing `scratch` — allocation-free once warm (the replicate hot path).
  virtual void PartitionInto(const SortedEntityIndex& index,
                             const StatsSumEstimator& inner,
                             PartitionScratch* scratch,
                             std::vector<size_t>* bounds) const = 0;
  /// Allocating convenience wrapper around PartitionInto.
  std::vector<size_t> Partition(const SortedEntityIndex& index,
                                const StatsSumEstimator& inner) const;

  /// True when PartitionInto can consume PartitionScratch::root_left_cache
  /// (a precomputed root-scan left-half column). Only the batched dynamic
  /// scan understands the handoff; everything else ignores the cache (the
  /// arm flag is cleared by the consumer either way).
  virtual bool SupportsRootScanCache() const { return false; }
};

/// §3.3.1: `num_buckets` equal-width value ranges over [min, max].
class EquiWidthPartitioner final : public BucketPartitioner {
 public:
  explicit EquiWidthPartitioner(int num_buckets);
  std::string name() const override;
  void PartitionInto(const SortedEntityIndex& index,
                     const StatsSumEstimator& inner, PartitionScratch* scratch,
                     std::vector<size_t>* bounds) const override;

 private:
  int num_buckets_;
};

/// Appendix B: `num_buckets` buckets with (near-)equal entity counts.
class EquiHeightPartitioner final : public BucketPartitioner {
 public:
  explicit EquiHeightPartitioner(int num_buckets);
  std::string name() const override;
  void PartitionInto(const SortedEntityIndex& index,
                     const StatsSumEstimator& inner, PartitionScratch* scratch,
                     std::vector<size_t>* bounds) const override;

 private:
  int num_buckets_;
};

/// §3.3.2 Algorithm 1: recursively split a bucket at the unique value that
/// minimizes the global Σ|Δ|; stop when no split lowers it.
///
/// The candidate-split scan of each bucket (one |Δ(left)| + |Δ(right)|
/// evaluation per distinct value) runs on a ThreadPool when the bucket has
/// enough candidates to amortize the dispatch; each candidate writes only
/// its own slot and the argmin keeps the serial first-minimum tie-break, so
/// the partition is identical for every thread count. When the call would
/// run inline anyway (1-thread pool, or nested inside a pool worker — the
/// bootstrap replicate case) the scan skips the dispatch entirely and stays
/// allocation-free.
///
/// MEMOIZED + PRUNED (see PartitionScratch). Child scans inherit their cut
/// lists and one half of every candidate's |Δ| from the parent scan, so
/// only the other half is computed; and because AbsDelta is nonnegative,
/// `delta_rest + (known halves)` lower-bounds every candidate total — a
/// candidate whose bound cannot go strictly below the running δmin can
/// neither win the argmin nor move δmin, so its remaining half is skipped
/// outright (a whole scan is skipped when even delta_rest ≥ δmin, e.g. a
/// singleton-free bucket with Δ == 0). Pruning and memoization change which
/// expressions are (re)computed, never their values: the partition — and
/// every downstream interval — is bit-identical to the exhaustive scan at
/// every thread count.
///
/// BATCHED (the default). A scan's surviving fresh halves are gathered into
/// PartitionScratch's SoA columns and evaluated in ONE
/// DeltaFromStatsBatch pass (fused coverage/γ² chain, no per-candidate
/// virtual dispatch, auto-vectorizable), pruned against the scan-start δmin
/// like the parallel fan-out always was; the kernel's multiplication-form
/// pre-filter (chao92.h) may additionally skip the exact FP chain for lanes
/// it can certify prunable. Wide scans split the lane range into blocks
/// across the pool — every lane is an independent pure function of its
/// stats, so results never depend on the block split or thread count.
/// SplitScanMode::kScalar keeps the per-candidate evaluation (running-δmin
/// pruning, the PR 4 code path) as a same-process reference: both modes
/// produce bit-identical partitions on every input
/// (tests/partition_memo_test.cc fuzzes batched vs scalar vs the unmemoized
/// reference scan; bench_bootstrap's verify pass cross-checks end-to-end
/// intervals before timing).
enum class SplitScanMode {
  kBatched,  ///< SoA gather + one DeltaFromStatsBatch kernel pass per scan
  kScalar,   ///< per-candidate DeltaFromStats (the reference path)
};

class DynamicPartitioner final : public BucketPartitioner {
 public:
  DynamicPartitioner() = default;
  /// nullptr means ThreadPool::Default(). A non-inert `cancel` token is
  /// polled once per worklist bucket: when it fires, the buckets still
  /// pending are finalized UNSPLIT and the scan returns immediately — the
  /// bounds are a valid (coarser) partition, but not Algorithm 1's
  /// converged one, so callers must discard the result via the token's
  /// status. The inert default leaves partitions bit-identical.
  explicit DynamicPartitioner(ThreadPool* pool,
                              SplitScanMode mode = SplitScanMode::kBatched,
                              CancelToken cancel = {})
      : pool_(pool), mode_(mode), cancel_(std::move(cancel)) {}
  explicit DynamicPartitioner(SplitScanMode mode) : mode_(mode) {}

  std::string name() const override { return "dynamic"; }
  void PartitionInto(const SortedEntityIndex& index,
                     const StatsSumEstimator& inner, PartitionScratch* scratch,
                     std::vector<size_t>* bounds) const override;
  /// The batched mode can consume a precomputed root-scan column; the
  /// scalar reference mode ignores it (so batched-vs-scalar fuzzing keeps
  /// covering the uncached gather).
  bool SupportsRootScanCache() const override {
    return mode_ == SplitScanMode::kBatched;
  }

 private:
  ThreadPool* pool_ = nullptr;
  SplitScanMode mode_ = SplitScanMode::kBatched;
  CancelToken cancel_;
};

/// Reusable per-thread state for allocation-free replicate bucket
/// evaluation: the scatter columns of the incremental re-sort (resting
/// invariant: multiplicity column all-zero), the sorted index + prefix
/// buffers, and the partition/bucket vectors. One scratch serves replicates
/// of any size from any SampleView, interleaved in any order — every
/// rebuild starts from the resting state, so results never depend on what
/// the scratch evaluated before.
/// Instances register with the process-wide resident-scratch gauge and honor
/// the cooperative trim epoch (common/scratch_metrics.h): RebuildIndex — the
/// sole entry point of the replicate hot path — checks the epoch once per
/// call (one relaxed load) and, when a trim was requested since this scratch
/// last looked, releases every pooled buffer before rebuilding. A trimmed
/// scratch is indistinguishable from a fresh one, so results are unaffected;
/// only the warm-up allocations recur.
class IndexScratch {
 public:
  IndexScratch() = default;
  ~IndexScratch();
  IndexScratch(const IndexScratch&) = delete;
  IndexScratch& operator=(const IndexScratch&) = delete;

  /// Rebuilds the scratch-owned SortedEntityIndex from `rep` and returns
  /// it. With rep.view attached the points are gathered in the view's
  /// entity rank order (incremental re-sort); otherwise copied and fully
  /// sorted. Both paths produce the identical canonical index.
  const SortedEntityIndex& RebuildIndex(const ReplicateSample& rep);

  /// Approximate resident capacity across every pooled buffer, in bytes.
  int64_t ApproxBytes() const;
  /// Releases every pooled buffer (back to a freshly-constructed scratch).
  void Trim();

 private:
  friend class BucketSumEstimator;

  /// Reconciles the resident-bytes gauge with the current capacity.
  void SyncResidentBytes();

  SortedEntityIndex index_;
  std::vector<int64_t> scatter_mult_;  // per original entity; all-zero at rest
  std::vector<double> scatter_value_;
  PartitionScratch partition_;
  std::vector<size_t> bounds_;
  std::vector<ValueBucket> buckets_;
  uint64_t trim_epoch_seen_ = 0;  // last scratch::TrimEpoch() observed
  int64_t reported_bytes_ = 0;    // our contribution to the global gauge
};

/// The composed bucket estimator (Eq. 11): Δ = Σ_b Δ(b).
class BucketSumEstimator final : public SumEstimator {
 public:
  /// Defaults to the paper's best configuration: dynamic partitioning with
  /// the naive inner estimator.
  BucketSumEstimator();
  BucketSumEstimator(std::shared_ptr<const BucketPartitioner> partitioner,
                     std::shared_ptr<const StatsSumEstimator> inner);

  std::string name() const override;
  Estimate EstimateImpact(const IntegratedSample& sample) const override;
  /// Same, reusing a prebuilt sorted index and/or whole-sample stats from a
  /// SamplePrecomp (bit-identical: both are pure functions of the sample).
  Estimate EstimateImpact(const IntegratedSample& sample,
                          const SamplePrecomp* pre) const override;

  /// Columnar replicate path (bit-identical to EstimateImpact on the
  /// materialized replicate — the whole-sample stats fold runs in
  /// first-touch order and the canonical index sort sees the same point
  /// multiset). Runs through a thread-local IndexScratch: zero heap
  /// allocations per replicate once warm.
  bool SupportsReplicates() const override { return true; }
  Estimate EstimateReplicate(const ReplicateSample& rep) const override;
  /// Same, through a caller-owned scratch (engines and tests that manage
  /// reuse explicitly).
  Estimate EstimateReplicate(const ReplicateSample& rep,
                             IndexScratch* scratch) const;

  /// Cross-replicate mega-batching (core/estimate.h contract): rebuilds
  /// every replicate's index, gathers ALL their root-scan left halves into
  /// one DeltaFromStatsBatch kernel call, hands each result column to its
  /// replicate's partition via PartitionScratch::root_left_cache, then
  /// finishes each replicate on the normal path. Bit-identical to the
  /// one-at-a-time path — the cache carries exactly the values the root
  /// scan's own gather+kernel pass would compute. Only pays off for the
  /// batched dynamic partitioner; other configurations fall back to the
  /// scalar loop.
  bool SupportsReplicateBatch() const override { return true; }
  void EstimateReplicateBatch(const ReplicateSample* const* reps, size_t count,
                              double* corrected_sums) const override;

  /// The full per-bucket breakdown (used by AVG and MIN/MAX, §5, and by the
  /// static-bucket ablation benches).
  std::vector<ValueBucket> ComputeBuckets(const IntegratedSample& sample) const;
  /// Same, over a columnar replicate (AVG/MIN-MAX bootstrap); reuses the
  /// thread-local scratch for the index rebuild.
  std::vector<ValueBucket> ComputeBuckets(const ReplicateSample& rep) const;
  /// Shared core: buckets of an already-built index.
  std::vector<ValueBucket> ComputeBuckets(const SortedEntityIndex& index) const;

  const BucketPartitioner& partitioner() const { return *partitioner_; }
  const StatsSumEstimator& inner() const { return *inner_; }

 private:
  /// Partition + per-bucket evaluation into scratch-owned vectors.
  void ComputeBucketsInto(const SortedEntityIndex& index,
                          PartitionScratch* partition_scratch,
                          std::vector<size_t>* bounds,
                          std::vector<ValueBucket>* out) const;
  /// Replicate evaluation on a scratch whose index_ is ALREADY rebuilt for
  /// `rep` (the mega-batch tail: the batch pass rebuilt the index to walk
  /// the root cuts, so re-rebuilding would double the dominant cost).
  Estimate EstimateReplicateBuilt(const ReplicateSample& rep,
                                  IndexScratch* scratch) const;

  std::shared_ptr<const BucketPartitioner> partitioner_;
  std::shared_ptr<const StatsSumEstimator> inner_;
  std::string name_;  // cached: replicate paths stamp it per Estimate
};

}  // namespace uuq

#endif  // UUQ_CORE_BUCKET_H_
