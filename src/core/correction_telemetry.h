// Process-wide counters over QueryCorrector outcomes — the clamp/coverage
// telemetry the accuracy trajectory reads (simulation/accuracy_matrix.h).
//
// The `unconstrained` clamp (query_correction.h) and the §6.5 low-coverage
// advice used to be per-answer flags only: visible to whoever held the
// CorrectedAnswer, invisible in aggregate. Treating the clamp as a
// first-class measured output (the accuracy matrix gates its frequency in
// CI) needs a counting surface that callers cannot forget to sample, so the
// correction layer increments these on every answer it produces.
//
// Counters are monotone process-lifetime totals on relaxed atomics (cheap
// enough for the serving hot path; cross-counter consistency is not needed —
// consumers diff two snapshots around the work they care about). They count
// PRODUCED answers only: corrections that fail with a typed status
// (cancellation, parse errors) increment nothing.
#ifndef UUQ_CORE_CORRECTION_TELEMETRY_H_
#define UUQ_CORE_CORRECTION_TELEMETRY_H_

#include <cstdint>

namespace uuq {

struct CorrectedAnswer;  // core/query_correction.h

/// One consistent-enough view of the counters (each field individually
/// exact; fields may straddle concurrent corrections).
struct CorrectionTelemetrySnapshot {
  int64_t corrections = 0;          ///< CorrectedAnswers produced
  int64_t unconstrained_clamps = 0; ///< answers with the unconstrained flag
  int64_t low_coverage = 0;         ///< advice said kCollectMoreData (Ĉ gate)
  int64_t bootstrap_intervals = 0;  ///< answers with bootstrap_valid
  int64_t bootstrap_aborted = 0;    ///< intervals abandoned to a deadline

  /// Component-wise this − since (the "what did MY work do" helper: snapshot
  /// before, snapshot after, diff).
  CorrectionTelemetrySnapshot Since(
      const CorrectionTelemetrySnapshot& since) const;
};

/// Current totals.
CorrectionTelemetrySnapshot CorrectionTelemetry();

namespace internal {
/// Folds one produced answer into the counters. Called by QueryCorrector on
/// every success path; not part of the public API.
void RecordCorrection(const CorrectedAnswer& answer);
}  // namespace internal

}  // namespace uuq

#endif  // UUQ_CORE_CORRECTION_TELEMETRY_H_
