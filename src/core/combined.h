// Combined estimators (paper §3.5, Appendix D).
//
// The building blocks compose: the bucket estimator can run the frequency
// estimator inside buckets (just BucketSumEstimator with a FrequencyEstimator
// inner), and the Monte-Carlo count estimate can replace Chao92 inside each
// bucket — implemented here. The paper finds both combinations UNDERPERFORM
// the plain dynamic bucket (each bucket has a smaller sample, which starves
// the MC search, and per-bucket publicity looks uniform anyway); Figure 10
// reproduces that negative result.
#ifndef UUQ_CORE_COMBINED_H_
#define UUQ_CORE_COMBINED_H_

#include "core/bucket.h"
#include "core/monte_carlo.h"

namespace uuq {

/// Dynamic buckets whose per-bucket COUNT estimate comes from the
/// Monte-Carlo search instead of Chao92; values use the bucket mean.
class MonteCarloBucketEstimator final : public SumEstimator {
 public:
  MonteCarloBucketEstimator()
      : MonteCarloBucketEstimator(MonteCarloOptions{}) {}
  explicit MonteCarloBucketEstimator(MonteCarloOptions mc_options)
      : mc_(mc_options) {}

  std::string name() const override { return "mc-bucket"; }
  Estimate EstimateImpact(const IntegratedSample& sample) const override;

 private:
  BucketSumEstimator partition_source_;  // dynamic + naive, defines buckets
  MonteCarloEstimator mc_;
};

}  // namespace uuq

#endif  // UUQ_CORE_COMBINED_H_
