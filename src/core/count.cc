#include "core/count.h"

#include <cmath>

#include "core/chao92.h"

namespace uuq {

const char* CountMethodName(CountMethod method) {
  switch (method) {
    case CountMethod::kChao92:
      return "chao92";
    case CountMethod::kGoodTuring:
      return "good-turing";
    case CountMethod::kMonteCarlo:
      return "monte-carlo";
  }
  return "?";
}

Estimate CountEstimator::EstimateCount(const IntegratedSample& sample) const {
  Estimate est;
  est.estimator = std::string("count[") + CountMethodName(method_) + "]";
  const SampleStats stats = SampleStats::FromSample(sample);
  est.coverage_ok = stats.Coverage() >= 0.4;
  if (stats.empty()) {
    est.coverage_ok = false;
    return est;
  }

  double n_hat = 0.0;
  switch (method_) {
    case CountMethod::kChao92:
      n_hat = Chao92Nhat(stats);
      break;
    case CountMethod::kGoodTuring:
      n_hat = GoodTuringNhat(stats);
      break;
    case CountMethod::kMonteCarlo:
      n_hat = mc_.EstimateNhat(sample);
      break;
  }
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(stats.c);
  est.missing_value = 1.0;  // each missing entity adds one to COUNT
  est.delta = est.missing_count;
  est.finite = std::isfinite(est.delta);
  est.corrected_sum = n_hat;
  return est;
}

}  // namespace uuq
