#include "core/count.h"

#include <cmath>

#include "core/chao92.h"

namespace uuq {

const char* CountMethodName(CountMethod method) {
  switch (method) {
    case CountMethod::kChao92:
      return "chao92";
    case CountMethod::kGoodTuring:
      return "good-turing";
    case CountMethod::kMonteCarlo:
      return "monte-carlo";
  }
  return "?";
}

namespace {

Estimate CountFromNhat(CountMethod method, const SampleStats& stats,
                       double n_hat) {
  Estimate est;
  est.estimator = std::string("count[") + CountMethodName(method) + "]";
  est.coverage_ok = stats.Coverage() >= 0.4;
  if (stats.empty()) {
    est.coverage_ok = false;
    return est;
  }
  est.n_hat = n_hat;
  est.missing_count = n_hat - static_cast<double>(stats.c);
  est.missing_value = 1.0;  // each missing entity adds one to COUNT
  est.delta = est.missing_count;
  est.finite = std::isfinite(est.delta);
  est.corrected_sum = n_hat;
  return est;
}

}  // namespace

// One body for both entry points: every branch resolves by overload on
// `input` (IntegratedSample or ReplicateSample).
template <typename Input>
Estimate CountEstimator::EstimateCountImpl(const Input& input,
                                           const SampleStats& stats) const {
  double n_hat = 0.0;
  if (!stats.empty()) {
    switch (method_) {
      case CountMethod::kChao92:
        n_hat = Chao92Nhat(stats);
        break;
      case CountMethod::kGoodTuring:
        n_hat = GoodTuringNhat(stats);
        break;
      case CountMethod::kMonteCarlo:
        n_hat = mc_.EstimateNhat(input);
        break;
    }
  }
  return CountFromNhat(method_, stats, n_hat);
}

Estimate CountEstimator::EstimateCount(const IntegratedSample& sample) const {
  return EstimateCountImpl(sample, SampleStats::FromSample(sample));
}

Estimate CountEstimator::EstimateCount(const ReplicateSample& rep) const {
  return EstimateCountImpl(rep, SampleStats::FromReplicate(rep));
}

}  // namespace uuq
