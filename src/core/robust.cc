#include "core/robust.h"

namespace uuq {

Estimate RobustSumEstimator::EstimateImpact(
    const IntegratedSample& sample) const {
  const Advice advice = advisor_.Advise(sample);
  Estimate est = advice.choice == EstimatorChoice::kMonteCarlo
                     ? mc_.EstimateImpact(sample)
                     : bucket_.EstimateImpact(sample);
  est.estimator = "robust[" + est.estimator + "]";
  if (advice.choice == EstimatorChoice::kCollectMoreData) {
    est.coverage_ok = false;
  }
  return est;
}

Estimate RobustSumEstimator::EstimateReplicate(
    const ReplicateSample& rep) const {
  const Advice advice = advisor_.Advise(rep);
  Estimate est = advice.choice == EstimatorChoice::kMonteCarlo
                     ? mc_.EstimateReplicate(rep)
                     : bucket_.EstimateReplicate(rep);
  est.estimator = "robust[" + est.estimator + "]";
  if (advice.choice == EstimatorChoice::kCollectMoreData) {
    est.coverage_ok = false;
  }
  return est;
}

}  // namespace uuq
