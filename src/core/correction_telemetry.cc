#include "core/correction_telemetry.h"

#include <atomic>

#include "core/query_correction.h"

namespace uuq {
namespace {

// Relaxed-contract counters: pure monotone telemetry — nothing reads them
// to make a control decision, so fetch_add/load stay memory_order_relaxed
// (seq_cst here would put an mfence on every correction for no benefit).
// Tests that assert exact deltas quiesce the engines first, which the
// ParallelFor/worker joins order for free.
struct Counters {
  std::atomic<int64_t> corrections{0};
  std::atomic<int64_t> unconstrained_clamps{0};
  std::atomic<int64_t> low_coverage{0};
  std::atomic<int64_t> bootstrap_intervals{0};
  std::atomic<int64_t> bootstrap_aborted{0};
};

Counters& GlobalCounters() {
  static Counters counters;
  return counters;
}

}  // namespace

CorrectionTelemetrySnapshot CorrectionTelemetrySnapshot::Since(
    const CorrectionTelemetrySnapshot& since) const {
  CorrectionTelemetrySnapshot delta;
  delta.corrections = corrections - since.corrections;
  delta.unconstrained_clamps =
      unconstrained_clamps - since.unconstrained_clamps;
  delta.low_coverage = low_coverage - since.low_coverage;
  delta.bootstrap_intervals = bootstrap_intervals - since.bootstrap_intervals;
  delta.bootstrap_aborted = bootstrap_aborted - since.bootstrap_aborted;
  return delta;
}

CorrectionTelemetrySnapshot CorrectionTelemetry() {
  const Counters& counters = GlobalCounters();
  CorrectionTelemetrySnapshot snapshot;
  snapshot.corrections = counters.corrections.load(std::memory_order_relaxed);
  snapshot.unconstrained_clamps =
      counters.unconstrained_clamps.load(std::memory_order_relaxed);
  snapshot.low_coverage =
      counters.low_coverage.load(std::memory_order_relaxed);
  snapshot.bootstrap_intervals =
      counters.bootstrap_intervals.load(std::memory_order_relaxed);
  snapshot.bootstrap_aborted =
      counters.bootstrap_aborted.load(std::memory_order_relaxed);
  return snapshot;
}

namespace internal {

void RecordCorrection(const CorrectedAnswer& answer) {
  Counters& counters = GlobalCounters();
  counters.corrections.fetch_add(1, std::memory_order_relaxed);
  if (answer.unconstrained) {
    counters.unconstrained_clamps.fetch_add(1, std::memory_order_relaxed);
  }
  if (answer.advice.choice == EstimatorChoice::kCollectMoreData) {
    counters.low_coverage.fetch_add(1, std::memory_order_relaxed);
  }
  if (answer.bootstrap_valid) {
    counters.bootstrap_intervals.fetch_add(1, std::memory_order_relaxed);
  }
  if (answer.bootstrap_aborted) {
    counters.bootstrap_aborted.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace internal
}  // namespace uuq
