#include "integration/diagnostics.h"

#include <algorithm>

#include "stats/coverage.h"
#include "stats/descriptive.h"

namespace uuq {

SourceImbalanceReport AnalyzeSourceSizes(const std::vector<int64_t>& sizes,
                                         double max_share_threshold,
                                         double gini_threshold) {
  SourceImbalanceReport report;
  report.num_sources = static_cast<int64_t>(sizes.size());

  // thread_local: worker-local buffer — this runs once per bootstrap
  // replicate under the robust estimator, so the derivation must not
  // allocate after warm-up, and per-thread ownership needs no locking.
  thread_local std::vector<double> contributions;
  contributions.clear();
  contributions.reserve(sizes.size());
  double total = 0.0;
  double max_size = 0.0;
  for (size_t j = 0; j < sizes.size(); ++j) {
    const double s = static_cast<double>(sizes[j]);
    contributions.push_back(s);
    total += s;
    if (s > max_size) {
      max_size = s;
      report.dominant_index = static_cast<int64_t>(j);
    }
  }
  if (report.num_sources == 0 || total == 0.0) return report;
  report.dominant_source = "source-" + std::to_string(report.dominant_index);
  report.gini = GiniCoefficientInPlace(&contributions);
  report.max_share = max_size / total;
  report.streaker_suspected =
      StreakerSuspected(report.num_sources, report.max_share, report.gini,
                        max_share_threshold, gini_threshold);
  return report;
}

SourceImbalanceReport AnalyzeSourceImbalance(const IntegratedSample& sample,
                                             double max_share_threshold,
                                             double gini_threshold) {
  std::vector<int64_t> sizes;
  std::vector<const std::string*> ids;
  sizes.reserve(sample.source_sizes().size());
  ids.reserve(sample.source_sizes().size());
  for (const auto& [id, size] : sample.source_sizes()) {
    sizes.push_back(size);
    ids.push_back(&id);
  }
  SourceImbalanceReport report =
      AnalyzeSourceSizes(sizes, max_share_threshold, gini_threshold);
  if (report.dominant_index >= 0 &&
      report.dominant_index < static_cast<int64_t>(ids.size())) {
    report.dominant_source = *ids[static_cast<size_t>(report.dominant_index)];
  }
  return report;
}

bool StreakerSuspected(int64_t num_sources, double max_share, double gini,
                       double max_share_threshold, double gini_threshold) {
  return (num_sources >= 2 && max_share > max_share_threshold) ||
         gini > gini_threshold;
}

CompletenessReport AnalyzeCompleteness(const IntegratedSample& sample) {
  CompletenessReport report;
  const FrequencyStatistics stats = sample.Fstats();
  report.n = stats.n();
  report.c = stats.c();
  report.singletons = stats.singletons();
  report.coverage = GoodTuringCoverage(stats);
  report.estimates_recommended = CoverageSufficient(stats);
  return report;
}

}  // namespace uuq
