#include "integration/diagnostics.h"

#include <algorithm>

#include "stats/coverage.h"
#include "stats/descriptive.h"

namespace uuq {

SourceImbalanceReport AnalyzeSourceImbalance(const IntegratedSample& sample,
                                             double max_share_threshold,
                                             double gini_threshold) {
  SourceImbalanceReport report;
  report.num_sources = sample.num_sources();
  if (report.num_sources == 0 || sample.n() == 0) return report;

  std::vector<double> contributions;
  contributions.reserve(sample.source_sizes().size());
  double max_size = 0.0;
  for (const auto& [id, size] : sample.source_sizes()) {
    const double s = static_cast<double>(size);
    contributions.push_back(s);
    if (s > max_size) {
      max_size = s;
      report.dominant_source = id;
    }
  }
  report.gini = GiniCoefficient(contributions);
  report.max_share = max_size / static_cast<double>(sample.n());
  report.streaker_suspected =
      (report.num_sources >= 2 && report.max_share > max_share_threshold) ||
      report.gini > gini_threshold;
  return report;
}

CompletenessReport AnalyzeCompleteness(const IntegratedSample& sample) {
  CompletenessReport report;
  const FrequencyStatistics stats = sample.Fstats();
  report.n = stats.n();
  report.c = stats.c();
  report.singletons = stats.singletons();
  report.coverage = GoodTuringCoverage(stats);
  report.estimates_recommended = CoverageSufficient(stats);
  return report;
}

}  // namespace uuq
