#include "integration/sample.h"

#include <algorithm>

#include "common/macros.h"
#include "common/scratch_metrics.h"
#include "integration/source.h"

namespace uuq {

double IntegratedSample::Fuse(const std::vector<double>& reports) const {
  UUQ_DCHECK(!reports.empty());
  switch (policy_) {
    case FusionPolicy::kAverage: {
      double sum = 0.0;
      for (double r : reports) sum += r;
      return sum / static_cast<double>(reports.size());
    }
    case FusionPolicy::kFirst:
      return reports.front();
    case FusionPolicy::kLast:
      return reports.back();
    case FusionPolicy::kMajority: {
      // Mode with ties broken by first occurrence.
      double best = reports.front();
      int best_count = 0;
      for (size_t i = 0; i < reports.size(); ++i) {
        int count = 0;
        for (double r : reports) {
          if (r == reports[i]) ++count;
        }
        if (count > best_count) {
          best_count = count;
          best = reports[i];
        }
      }
      return best;
    }
  }
  return reports.front();
}

void IntegratedSample::Add(const std::string& source_id,
                           const std::string& entity_key, double value,
                           const std::string& category) {
  const std::string key = NormalizeEntityKey(entity_key);
  UUQ_CHECK_MSG(!key.empty(), "empty entity key");
  ++n_;
  ++source_sizes_[source_id];

  auto src_it = source_index_.find(source_id);
  int32_t source_idx;
  if (src_it == source_index_.end()) {
    source_idx = static_cast<int32_t>(source_names_.size());
    source_names_.push_back(source_id);
    source_index_.emplace(source_id, source_idx);
  } else {
    source_idx = src_it->second;
  }

  auto it = index_.find(key);
  if (it == index_.end()) {
    // New entity: multiplicity 0 -> 1. Reuse a pooled report buffer when
    // Reset() left one behind (its allocation survives the clear).
    const size_t stat_index = entities_.size();
    if (reports_.size() <= stat_index) reports_.emplace_back();
    reports_[stat_index].push_back(value);
    log_.push_back({source_idx, static_cast<int32_t>(stat_index), value});
    entities_.push_back({key, value, 1, category});
    index_.emplace(key, stat_index);
    ++multiplicity_histogram_[1];
    observed_sum_ += value;
    singleton_sum_ += value;
    return;
  }
  const size_t stat_index = it->second;
  log_.push_back({source_idx, static_cast<int32_t>(stat_index), value});
  if (!category.empty() && entities_[stat_index].category.empty()) {
    entities_[stat_index].category = category;
  }

  EntityStat& stat = entities_[stat_index];
  const double old_value = stat.value;
  const int64_t old_mult = stat.multiplicity;

  reports_[stat_index].push_back(value);
  const double new_value = Fuse(reports_[stat_index]);

  // Histogram shift old_mult -> old_mult + 1.
  auto hist_it = multiplicity_histogram_.find(old_mult);
  UUQ_DCHECK(hist_it != multiplicity_histogram_.end());
  if (--hist_it->second == 0) multiplicity_histogram_.erase(hist_it);
  ++multiplicity_histogram_[old_mult + 1];

  // The entity stops being a singleton exactly when old_mult == 1.
  if (old_mult == 1) singleton_sum_ -= old_value;

  observed_sum_ += new_value - old_value;
  stat.value = new_value;
  stat.multiplicity = old_mult + 1;
}

void IntegratedSample::Reset(FusionPolicy policy) {
  policy_ = policy;
  n_ = 0;
  observed_sum_ = 0.0;
  singleton_sum_ = 0.0;
  // Clear each used report buffer IN PLACE: the vector-of-vectors keeps
  // every inner allocation, so the next fill re-uses them slot by slot
  // (reports_ only ever grows; slots past the new entity count are spares).
  for (size_t i = 0; i < entities_.size() && i < reports_.size(); ++i) {
    reports_[i].clear();
  }
  entities_.clear();
  index_.clear();
  multiplicity_histogram_.clear();
  source_sizes_.clear();
  source_names_.clear();
  source_index_.clear();
  log_.clear();
}

FrequencyStatistics IntegratedSample::Fstats() const {
  return FrequencyStatistics::FromHistogram(multiplicity_histogram_);
}

std::vector<double> IntegratedSample::Values() const {
  std::vector<double> out;
  out.reserve(entities_.size());
  for (const EntityStat& e : entities_) out.push_back(e.value);
  return out;
}

std::vector<int64_t> IntegratedSample::SourceSizeVector() const {
  std::vector<int64_t> out;
  out.reserve(source_sizes_.size());
  for (const auto& [id, size] : source_sizes_) out.push_back(size);
  return out;
}

std::vector<Observation> IntegratedSample::ObservationLog() const {
  std::vector<Observation> out;
  out.reserve(log_.size());
  for (const RawObservation& entry : log_) {
    const EntityStat& entity = entities_[entry.entity_index];
    out.push_back({source_names_[entry.source_index], entity.key, entry.value,
                   entity.category});
  }
  return out;
}

std::vector<std::string> IntegratedSample::Categories() const {
  std::vector<std::string> out;
  for (const EntityStat& entity : entities_) {
    if (!entity.category.empty()) out.push_back(entity.category);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

IntegratedSample IntegratedSample::Filter(
    const std::function<bool(const EntityStat&)>& keep) const {
  IntegratedSample out(policy_);
  for (const RawObservation& entry : log_) {
    const EntityStat& entity = entities_[entry.entity_index];
    if (!keep(entity)) continue;
    out.Add(source_names_[entry.source_index], entity.key, entry.value,
            entity.category);
  }
  return out;
}

int64_t IntegratedSample::ApproxBytes() const {
  int64_t bytes =
      static_cast<int64_t>(entities_.capacity() * sizeof(EntityStat));
  bytes += static_cast<int64_t>(reports_.capacity() *
                                sizeof(std::vector<double>));
  for (const auto& r : reports_) {
    bytes += static_cast<int64_t>(r.capacity() * sizeof(double));
  }
  bytes += static_cast<int64_t>(log_.capacity() * sizeof(RawObservation));
  bytes += static_cast<int64_t>(source_names_.capacity() *
                                sizeof(std::string));
  // Node-based containers: one node per entry, element + two-pointer
  // overhead as a flat estimate (string heap storage excluded).
  bytes += static_cast<int64_t>(
      index_.size() * (sizeof(std::string) + sizeof(size_t) + 16));
  bytes += static_cast<int64_t>(multiplicity_histogram_.size() *
                                (2 * sizeof(int64_t) + 16));
  bytes += static_cast<int64_t>(
      source_sizes_.size() *
      (sizeof(std::string) + sizeof(int64_t) + 16));
  bytes += static_cast<int64_t>(
      source_index_.size() *
      (sizeof(std::string) + sizeof(int32_t) + 16));
  return bytes;
}

SampleArena::Lease::~Lease() {
  if (arena_ != nullptr) arena_->Release(sample_);
}

SampleArena::~SampleArena() {
  if (reported_bytes_ != 0) scratch::AddResidentBytes(-reported_bytes_);
}

void SampleArena::SyncResidentBytes() {
  int64_t now = 0;
  for (const auto& sample : free_) now += sample->ApproxBytes();
  for (const auto& sample : leased_) now += sample->ApproxBytes();
  if (now != reported_bytes_) {
    scratch::AddResidentBytes(now - reported_bytes_);
    reported_bytes_ = now;
  }
}

void SampleArena::Trim() {
  free_.clear();
  SyncResidentBytes();
}

SampleArena::Lease SampleArena::Acquire(FusionPolicy policy) {
  // Cooperative trim (scratch_metrics.h): one relaxed load per acquire; a
  // requested trim drops the idle shells before recycling, so the pool's
  // high-water from an earlier (larger) sample is released on the owning
  // thread's next replicate.
  const uint64_t epoch = scratch::TrimEpoch();
  if (epoch != trim_epoch_seen_) {
    trim_epoch_seen_ = epoch;
    Trim();
  }
  std::unique_ptr<IntegratedSample> sample;
  if (!free_.empty()) {
    sample = std::move(free_.back());
    free_.pop_back();
    sample->Reset(policy);
  } else {
    sample = std::make_unique<IntegratedSample>(policy);
  }
  IntegratedSample* raw = sample.get();
  leased_.push_back(std::move(sample));
  SyncResidentBytes();
  return Lease(this, raw);
}

void SampleArena::Release(IntegratedSample* sample) {
  for (auto it = leased_.begin(); it != leased_.end(); ++it) {
    if (it->get() == sample) {
      free_.push_back(std::move(*it));
      leased_.erase(it);
      return;
    }
  }
  UUQ_CHECK_MSG(false, "Lease released a sample this arena never leased");
}

Table IntegratedSample::ToTable(const std::string& table_name,
                                const std::string& value_column) const {
  Schema schema({{"entity", ValueType::kString},
                 {value_column, ValueType::kDouble},
                 {"observations", ValueType::kInt64},
                 {"category", ValueType::kString}});
  Table table(table_name, schema);
  for (const EntityStat& e : entities_) {
    table.AppendUnchecked({Value(e.key), Value(e.value),
                           Value(e.multiplicity),
                           e.category.empty() ? Value::Null()
                                              : Value(e.category)});
  }
  return table;
}

}  // namespace uuq
