// Data sources and observations (paper §2.2).
//
// A data source mentions each real-world entity at most once (sampling
// without replacement); the integration layer combines many sources into the
// sample S, which approximates sampling with replacement when enough sources
// overlap.
#ifndef UUQ_INTEGRATION_SOURCE_H_
#define UUQ_INTEGRATION_SOURCE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace uuq {

/// One claim by one source: "entity `entity_key` has attribute value
/// `value`". The attribute under aggregation is numeric (employees, revenue,
/// GDP, participants, ...). `category` is an optional dimensional attribute
/// (state, sector, ...) enabling grouped corrected queries.
struct Observation {
  std::string source_id;
  std::string entity_key;
  double value = 0.0;
  std::string category;
};

/// Canonical entity-resolution key: lower-cased, trimmed, inner whitespace
/// runs collapsed to one space. "IBM Corp" == " ibm   corp ".
std::string NormalizeEntityKey(const std::string& raw);

/// A single source's contribution. Duplicate entity mentions within one
/// source are rejected — a web page or crowd answer sheet lists an entity
/// once, which is exactly the paper's sampling-without-replacement model.
class DataSource {
 public:
  explicit DataSource(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }
  size_t size() const { return claims_.size(); }

  /// Adds a claim; FailedPrecondition when the (normalized) entity was
  /// already claimed by this source.
  Status Add(const std::string& entity_key, double value,
             const std::string& category = "");

  struct Claim {
    std::string entity_key;  // normalized
    double value;
    std::string category;
  };
  const std::vector<Claim>& claims() const { return claims_; }

 private:
  std::string id_;
  std::vector<Claim> claims_;
};

}  // namespace uuq

#endif  // UUQ_INTEGRATION_SOURCE_H_
