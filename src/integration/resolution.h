// Fuzzy entity resolution for the integration layer.
//
// The paper treats data cleaning as orthogonal (§2: "we assume that after a
// proper data cleaning process we have one instance per observed entity"),
// and the exact-match NormalizeEntityKey covers disciplined inputs. Real
// source text is messier — "IBM Corp." vs "I.B.M. Corporation" — and a
// wrong split inflates f1 (phantom singletons) which directly biases every
// estimator. This module provides the standard string-similarity toolkit
// and a greedy canonicalizer that maps new mentions onto known entities
// above a similarity threshold.
#ifndef UUQ_INTEGRATION_RESOLUTION_H_
#define UUQ_INTEGRATION_RESOLUTION_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace uuq {

/// Jaro similarity in [0, 1]; 1 = identical, 0 = no matching characters.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler: Jaro boosted by up to 4 characters of common prefix.
/// `prefix_scale` is Winkler's p (conventionally 0.1, must be <= 0.25).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

/// Token-set similarity: |intersection| / |union| over whitespace tokens of
/// the normalized strings (Jaccard). Robust to word reorderings.
double TokenJaccardSimilarity(std::string_view a, std::string_view b);

/// Greedy streaming canonicalizer. The FIRST mention of an entity becomes
/// the canonical key; later mentions whose similarity to some canonical key
/// reaches `threshold` are mapped onto it. Comparison happens on normalized
/// keys (lower-cased, whitespace-collapsed, with common corporate suffixes
/// dropped). Deterministic given mention order.
class FuzzyResolver {
 public:
  struct Options {
    double threshold = 0.92;      ///< Jaro-Winkler acceptance threshold
    bool use_token_jaccard = true;  ///< also accept on token-set match
    double token_threshold = 0.99;  ///< Jaccard acceptance (≈ exact set)
    bool strip_corporate_suffixes = true;  ///< "inc", "corp", "llc", ...
  };

  FuzzyResolver() : FuzzyResolver(Options{}) {}
  explicit FuzzyResolver(Options options) : options_(options) {}

  /// Returns the canonical key for a raw mention (registering it as a new
  /// canonical entity when nothing matches).
  std::string Resolve(const std::string& raw_mention);

  /// The comparison form of a mention (exposed for tests/debugging).
  std::string ComparisonForm(const std::string& raw_mention) const;

  size_t num_entities() const { return canonical_.size(); }

 private:
  Options options_;
  std::vector<std::string> canonical_;        // canonical normalized keys
  std::vector<std::string> comparison_form_;  // suffix-stripped forms
  std::unordered_map<std::string, size_t> exact_;  // comparison form -> index
};

}  // namespace uuq

#endif  // UUQ_INTEGRATION_RESOLUTION_H_
