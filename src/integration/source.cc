#include "integration/source.h"

#include <cctype>

namespace uuq {

std::string NormalizeEntityKey(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  bool pending_space = false;
  for (char c : raw) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    out += c;
  }
  return out;
}

Status DataSource::Add(const std::string& entity_key, double value,
                       const std::string& category) {
  std::string key = NormalizeEntityKey(entity_key);
  if (key.empty()) {
    return Status::InvalidArgument("empty entity key");
  }
  for (const Claim& claim : claims_) {
    if (claim.entity_key == key) {
      return Status::FailedPrecondition("source '" + id_ +
                                        "' already mentions '" + key + "'");
    }
  }
  claims_.push_back({std::move(key), value, category});
  return Status::OK();
}

}  // namespace uuq
