#include "integration/integrator.h"

#include "common/macros.h"

namespace uuq {

std::string Integrator::ResolveKey(const std::string& raw_key) {
  return options_.fuzzy_resolution ? resolver_.Resolve(raw_key) : raw_key;
}

Status Integrator::AddSource(const DataSource& source) {
  if (source.id().empty()) {
    return Status::InvalidArgument("source id must be non-empty");
  }
  for (const DataSource::Claim& claim : source.claims()) {
    sample_.Add(source.id(), ResolveKey(claim.entity_key), claim.value,
                claim.category);
  }
  return Status::OK();
}

void Integrator::AddObservation(const Observation& obs) {
  sample_.Add(obs.source_id, ResolveKey(obs.entity_key), obs.value,
              obs.category);
}

void Integrator::Publish(Catalog* catalog) const {
  UUQ_CHECK(catalog != nullptr);
  catalog->Register(IntegratedView());
}

}  // namespace uuq
