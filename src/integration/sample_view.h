// Columnar resampling view over an IntegratedSample (the bootstrap engine's
// hot path).
//
// Source-level resampling (bootstrap-of-clusters, delete-one-source
// jackknife) used to rebuild a full IntegratedSample per replicate: a
// std::map of per-source Observation vectors, string keys re-hashed and
// fusion re-run for every observation of every replicate. SampleView
// flattens the sample ONCE into contiguous index/value columns:
//
//   arrival order:    obs_entity[i], obs_source[i], obs_value[i]
//   source-grouped:   src_entity[j], src_value[j] with per-source ranges
//                     src_begin[s]..src_begin[s+1] (sources sorted by id —
//                     the draw-index space of the legacy resampler)
//
// A replicate is then just a multiset of source indices. BuildReplicate
// replays the drawn ranges through per-entity accumulators (dense arrays
// indexed by the ORIGINAL entity index — no maps, no strings, no hashing)
// and emits a ReplicateSample: fused value + multiplicity per touched
// entity, in first-touch order, plus the replicate's per-source sizes.
//
// kMajority FUSION runs columnar through a counting-sort report gather: at
// flatten time every observation is mapped to a REPORT SLOT (its entity's
// distinct report values, first-arrival order), so a replicate maintains a
// per-slot histogram — built once, updated per draw — and the per-entity
// mode falls out of a scan of the entity's slot range, ties broken by the
// slot first touched in replay order (exactly IntegratedSample::Fuse's
// first-occurrence rule). Every fusion policy therefore evaluates columnar;
// MaterializeReplicate remains as the conformance reference and the
// fallback for external estimators without a columnar path.
//
// DETERMINISM CONTRACT. The columnar replicate is BIT-IDENTICAL to the
// sample the legacy map-based resampler would have materialized from the
// same draws: observations are replayed in the same order (draw order,
// intra-source arrival order; the jackknife replays global arrival order),
// so the fused-value fold, the first-touch entity order, and the id-ordered
// source sizes all match the materialized IntegratedSample exactly — for
// every fusion policy, kMajority included.
//
// THREADING. A SampleView is immutable after construction and safe to share
// across threads. Each thread owns its ReplicateScratch/ReplicateSample;
// scratch buffers are restored to their resting state (count columns all
// zero) before BuildReplicate returns, so reuse never changes results.
#ifndef UUQ_INTEGRATION_SAMPLE_VIEW_H_
#define UUQ_INTEGRATION_SAMPLE_VIEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "integration/sample.h"

namespace uuq {

class SampleView;

/// The per-entity state estimators actually consume: fused value and
/// multiplicity. (Keys and categories never enter the estimation math.)
struct EntityPoint {
  double value = 0.0;
  int64_t multiplicity = 0;
};

/// A resampling replicate in columnar form. `entities` is in first-touch
/// replay order — the same order the materialized IntegratedSample's
/// entities() would have — and `source_sizes` matches the materialized
/// sample's SourceSizeVector() (id-sorted) element for element.
/// `entity_indices[i]` is the ORIGINAL entity index (into the source
/// sample's entities()) behind entities[i], and `view` points at the
/// producing SampleView: together they let downstream consumers (the bucket
/// estimator's IndexScratch) reuse per-view precomputation such as the
/// entity rank order. Both are set by the Build* methods; a hand-assembled
/// replicate may leave them empty/null and still evaluates everywhere,
/// just without the incremental fast paths.
///
/// LIFETIME. `view` is a non-owning alias: the SampleView (and the sample
/// behind it) must outlive every use of the replicate through view-aware
/// consumers. A replicate that may outlive its view must null the pointer
/// (consumers then take the view-free path). The Build* methods keep
/// entity_indices consistent with the view's entity space; hand-assembled
/// replicates that set `view` themselves own that invariant (checked by
/// UUQ_DCHECK in debug builds).
struct ReplicateSample {
  FusionPolicy policy = FusionPolicy::kAverage;
  std::vector<EntityPoint> entities;
  std::vector<int32_t> entity_indices;
  std::vector<int64_t> source_sizes;
  const SampleView* view = nullptr;
};

/// Reusable per-thread buffers for BuildReplicate / BuildLeaveOneOut.
/// Resting invariant: `count` and `slot_count` are all-zero (enforced by the
/// builders), so one scratch can serve any number of replicates of any
/// SampleView, interleaved in any order.
class ReplicateScratch {
 public:
  ReplicateScratch() = default;

  /// Draw buffer for DrawBootstrapSources (kept here so the bootstrap inner
  /// loop is allocation-free after warm-up).
  std::vector<int32_t>& draws() { return draws_; }

 private:
  friend class SampleView;
  friend class ReplicateFold;  // the shared fusion fold in sample_view.cc
  friend class MajorityFold;   // the counting-sort kMajority fold
  std::vector<int32_t> draws_;
  std::vector<int64_t> count_;   // per original entity; all-zero at rest
  std::vector<double> acc_;      // policy accumulator (sum / first / last)
  std::vector<int32_t> touched_; // entity indices in first-touch order
  // kMajority report histogram (per report slot; see SampleView).
  std::vector<int32_t> slot_count_;  // all-zero at rest
  std::vector<int32_t> slot_seq_;    // first-touch sequence; valid iff count>0
};

class SampleView {
 public:
  /// Flattens `sample`. The view keeps a pointer to `sample` for the
  /// Materialize* adapters (entity keys live there); the sample must outlive
  /// the view.
  explicit SampleView(const IntegratedSample& sample);

  /// Every fusion policy now folds columnar (kMajority via the per-slot
  /// report histogram). Retained so callers can keep gating on it; the
  /// materializing fallback is only needed for estimators without a
  /// columnar replicate path.
  static bool PolicySupportsColumnar(FusionPolicy policy) {
    (void)policy;
    return true;
  }

  int64_t num_sources() const {
    return static_cast<int64_t>(source_ids_.size());
  }
  int64_t num_entities() const { return num_entities_; }
  int64_t num_observations() const {
    return static_cast<int64_t>(obs_value_.size());
  }
  FusionPolicy policy() const { return policy_; }

  /// Source ids sorted ascending — the draw-index space. Index `s` here is
  /// what DrawBootstrapSources emits and BuildLeaveOneOut excludes.
  const std::vector<std::string>& source_ids() const { return source_ids_; }

  /// Observation count n_s of source `s` (id-sorted index).
  int64_t source_size(int32_t s) const {
    return src_begin_[static_cast<size_t>(s) + 1] -
           src_begin_[static_cast<size_t>(s)];
  }

  /// Original entity indices sorted ascending by (fused value, index): the
  /// rank-preserving gather order for incremental replicate re-sorts (a
  /// bootstrap replicate perturbs multiplicities and nudges fused values,
  /// so a gather in this order is already nearly sorted by replicate value).
  const std::vector<int32_t>& entity_rank_order() const {
    return entity_rank_order_;
  }

  /// Draws num_sources() source indices with replacement into `draws`.
  /// Consumes the Rng exactly like the legacy map-based resampler (l calls
  /// to NextBounded(l)), so a given seed selects the same source multiset as
  /// every earlier release.
  void DrawBootstrapSources(Rng* rng, std::vector<int32_t>* draws) const;

  /// Builds the bootstrap replicate implied by `draws`. Allocation-free
  /// after scratch/out warm-up. Serves every fusion policy.
  void BuildReplicate(const std::vector<int32_t>& draws,
                      ReplicateScratch* scratch, ReplicateSample* out) const;

  /// Builds the delete-one-source jackknife replicate (arrival-order replay
  /// skipping source `excluded`). Serves every fusion policy.
  void BuildLeaveOneOut(int32_t excluded, ReplicateScratch* scratch,
                        ReplicateSample* out) const;

  /// Materializes the IntegratedSample a draw multiset corresponds to —
  /// byte-identical to the legacy map-based ResampleSources body (fresh
  /// "bs<draw>" identities, intra-source arrival order). This is the
  /// conformance reference and the fallback for estimators without a
  /// columnar replicate path.
  IntegratedSample MaterializeReplicate(
      const std::vector<int32_t>& draws) const;

  /// Same, into a caller-owned (typically SampleArena-pooled) sample: `out`
  /// is Reset() to this view's policy and rebuilt in place, reusing its
  /// container capacity — the materializing-path hot loop. The result is
  /// indistinguishable from MaterializeReplicate's return value through
  /// every public accessor.
  void MaterializeReplicateInto(const std::vector<int32_t>& draws,
                                IntegratedSample* out) const;

  /// Materializes the leave-one-out sample (original ids and categories),
  /// matching the legacy jackknife replay.
  IntegratedSample MaterializeLeaveOneOut(int32_t excluded) const;

  /// Pooled-sample variant of MaterializeLeaveOneOut (see
  /// MaterializeReplicateInto).
  void MaterializeLeaveOneOutInto(int32_t excluded,
                                  IntegratedSample* out) const;

 private:
  /// Fills out->source_sizes with the replicate's n_j in the order the
  /// materialized sample's id-sorted source map would list them ("bs0",
  /// "bs1", "bs10", ... is LEXICOGRAPHIC in the draw position).
  void EmitReplicateSourceSizes(const std::vector<int32_t>& draws,
                                ReplicateSample* out) const;

  /// Shared replay loops: feed Observe(entity, payload[j]) for every
  /// observation of the drawn sources (draw order, intra-source arrival
  /// order) / of the arrival stream minus `excluded`. `payload` is the
  /// value column for the streaming folds and the slot column for the
  /// majority fold.
  template <typename Fold, typename T>
  void ReplayDrawnSources(const std::vector<int32_t>& draws, const T* payload,
                          Fold* fold) const;
  template <typename Fold, typename T>
  void ReplayArrivalExcluding(int32_t excluded, const T* payload,
                              Fold* fold) const;

  /// Builds the kMajority report-slot columns (see file comment).
  void BuildMajoritySlots();

  const IntegratedSample* sample_;
  FusionPolicy policy_;
  int64_t num_entities_ = 0;

  // Arrival-order columns (jackknife replay).
  std::vector<int32_t> obs_entity_;
  std::vector<int32_t> obs_source_;  // id-sorted source index
  std::vector<double> obs_value_;

  // Source-grouped columns (bootstrap replay): source s owns
  // [src_begin_[s], src_begin_[s+1]).
  std::vector<int32_t> src_entity_;
  std::vector<double> src_value_;
  std::vector<int64_t> src_begin_;

  // kMajority report slots (built only for that policy): entity e owns
  // slots [ent_slot_begin_[e], ent_slot_begin_[e+1]); slot_value_ is the
  // slot's report value (first-arrival bit pattern); obs_slot_/src_slot_
  // map each observation (arrival / source-grouped order) to its slot.
  std::vector<int64_t> ent_slot_begin_;
  std::vector<double> slot_value_;
  std::vector<int32_t> obs_slot_;
  std::vector<int32_t> src_slot_;

  std::vector<std::string> source_ids_;  // sorted ascending
  std::vector<int32_t> entity_rank_order_;
  // Lexicographic order of the draw positions' "bs<i>" identities, cached
  // for the common draws.size() == num_sources() case.
  std::vector<int32_t> bs_lex_order_;
};

}  // namespace uuq

#endif  // UUQ_INTEGRATION_SAMPLE_VIEW_H_
