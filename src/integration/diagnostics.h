// Diagnostics over an integrated sample: source-imbalance ("streakers",
// paper §6.3) and completeness/coverage reporting (§6.5).
#ifndef UUQ_INTEGRATION_DIAGNOSTICS_H_
#define UUQ_INTEGRATION_DIAGNOSTICS_H_

#include <string>

#include "integration/sample.h"

namespace uuq {

/// Summary of how evenly sources contribute to the sample.
struct SourceImbalanceReport {
  int64_t num_sources = 0;
  double gini = 0.0;             ///< 0 = perfectly even contributions
  double max_share = 0.0;        ///< largest n_j / n
  std::string dominant_source;   ///< id of the largest contributor
  bool streaker_suspected = false;
};

/// Heuristics matching the paper's qualitative definition: a streaker is a
/// source contributing far more than its peers. We flag when the largest
/// source holds more than `max_share_threshold` of all observations (with at
/// least two sources) or the contribution Gini exceeds `gini_threshold`.
SourceImbalanceReport AnalyzeSourceImbalance(const IntegratedSample& sample,
                                             double max_share_threshold = 0.5,
                                             double gini_threshold = 0.6);

/// Coverage-centric completeness summary for end users.
struct CompletenessReport {
  int64_t n = 0;
  int64_t c = 0;
  int64_t singletons = 0;
  double coverage = 0.0;          ///< Good-Turing Ĉ
  bool estimates_recommended = false;  ///< Ĉ >= 0.4 gate (§6.5)
};

CompletenessReport AnalyzeCompleteness(const IntegratedSample& sample);

}  // namespace uuq

#endif  // UUQ_INTEGRATION_DIAGNOSTICS_H_
