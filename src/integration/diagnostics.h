// Diagnostics over an integrated sample: source-imbalance ("streakers",
// paper §6.3) and completeness/coverage reporting (§6.5).
#ifndef UUQ_INTEGRATION_DIAGNOSTICS_H_
#define UUQ_INTEGRATION_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "integration/sample.h"

namespace uuq {

/// Summary of how evenly sources contribute to the sample.
struct SourceImbalanceReport {
  int64_t num_sources = 0;
  double gini = 0.0;             ///< 0 = perfectly even contributions
  double max_share = 0.0;        ///< largest n_j / n
  int64_t dominant_index = -1;   ///< position of the largest contributor
  std::string dominant_source;   ///< id (or positional label) of same
  bool streaker_suspected = false;
};

/// The streaker decision rule itself, shared by AnalyzeSourceImbalance and
/// the estimator advisor's columnar replicate path so the definition lives
/// in exactly one place: flag when the largest source holds more than
/// `max_share_threshold` of all observations (with at least two sources) or
/// the contribution Gini exceeds `gini_threshold`.
bool StreakerSuspected(int64_t num_sources, double max_share, double gini,
                       double max_share_threshold, double gini_threshold);

/// Heuristics matching the paper's qualitative definition: a streaker is a
/// source contributing far more than its peers (see StreakerSuspected).
SourceImbalanceReport AnalyzeSourceImbalance(const IntegratedSample& sample,
                                             double max_share_threshold = 0.5,
                                             double gini_threshold = 0.6);

/// The same analysis over a bare size column (the columnar bootstrap's
/// per-replicate form — no ids, no materialization, allocation-free after
/// warm-up). dominant_source carries the positional label
/// "source-<dominant_index>"; AnalyzeSourceImbalance replaces it with the
/// real id.
SourceImbalanceReport AnalyzeSourceSizes(const std::vector<int64_t>& sizes,
                                         double max_share_threshold = 0.5,
                                         double gini_threshold = 0.6);

/// Coverage-centric completeness summary for end users.
struct CompletenessReport {
  int64_t n = 0;
  int64_t c = 0;
  int64_t singletons = 0;
  double coverage = 0.0;          ///< Good-Turing Ĉ
  bool estimates_recommended = false;  ///< Ĉ >= 0.4 gate (§6.5)
};

CompletenessReport AnalyzeCompleteness(const IntegratedSample& sample);

}  // namespace uuq

#endif  // UUQ_INTEGRATION_DIAGNOSTICS_H_
