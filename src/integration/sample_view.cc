#include "integration/sample_view.h"

#include <algorithm>
#include <string>

#include "common/macros.h"

namespace uuq {

namespace {

/// Lexicographic order of the identities "bs0".."bs<count-1>" — the order a
/// std::map keyed by those strings iterates in. Shared prefix "bs" drops
/// out, so this is the lexicographic order of the decimal draw positions.
std::vector<int32_t> BsLexOrder(size_t count) {
  std::vector<int32_t> order(count);
  for (size_t i = 0; i < count; ++i) order[i] = static_cast<int32_t>(i);
  std::sort(order.begin(), order.end(), [](int32_t a, int32_t b) {
    return std::to_string(a) < std::to_string(b);
  });
  return order;
}

}  // namespace

/// The per-replicate fusion fold shared by BuildReplicate (source-grouped
/// replay) and BuildLeaveOneOut (arrival-order replay) for the streaming
/// policies: dense per-entity accumulators with first-touch tracking.
/// Observe() mirrors what IntegratedSample::Add's incremental Fuse converges
/// to for each policy; Emit() divides out kAverage, restores the scratch
/// resting state (count all-zero), and fills out->entities in first-touch
/// order.
class ReplicateFold {
 public:
  ReplicateFold(FusionPolicy policy, ReplicateScratch* scratch,
                int64_t num_entities)
      : policy_(policy), scratch_(scratch) {
    if (scratch->count_.size() < static_cast<size_t>(num_entities)) {
      scratch->count_.resize(static_cast<size_t>(num_entities), 0);
      scratch->acc_.resize(static_cast<size_t>(num_entities), 0.0);
    }
    scratch->touched_.clear();
    count_ = scratch->count_.data();
    acc_ = scratch->acc_.data();
  }

  void Observe(int32_t e, double v) {
    if (count_[e]++ == 0) {
      scratch_->touched_.push_back(e);
      acc_[e] = v;
    } else if (policy_ == FusionPolicy::kAverage) {
      acc_[e] += v;  // same left-fold order as the legacy recompute
    } else if (policy_ == FusionPolicy::kLast) {
      acc_[e] = v;
    }
    // kFirst keeps the first-touch value.
  }

  void Emit(ReplicateSample* out) {
    out->policy = policy_;
    out->entities.clear();
    out->entities.reserve(scratch_->touched_.size());
    for (int32_t e : scratch_->touched_) {
      const int64_t m = count_[e];
      const double value = policy_ == FusionPolicy::kAverage
                               ? acc_[e] / static_cast<double>(m)
                               : acc_[e];
      out->entities.push_back({value, m});
      count_[e] = 0;  // restore the resting invariant
    }
    out->entity_indices = scratch_->touched_;
  }

 private:
  const FusionPolicy policy_;
  ReplicateScratch* const scratch_;
  int64_t* UUQ_RESTRICT count_ = nullptr;
  double* UUQ_RESTRICT acc_ = nullptr;
};

/// The kMajority counting-sort fold: per-slot report histogram updated per
/// observation, per-entity mode resolved at Emit by scanning the entity's
/// slot range — max count wins, ties broken by the slot whose first touch
/// came earliest in replay order (IntegratedSample::Fuse's first-occurrence
/// rule, since a slot's first touch IS its value's first occurrence).
class MajorityFold {
 public:
  MajorityFold(ReplicateScratch* scratch, int64_t num_entities,
               int64_t num_slots, const double* slot_value,
               const int64_t* ent_slot_begin)
      : scratch_(scratch),
        slot_value_(slot_value),
        ent_slot_begin_(ent_slot_begin) {
    if (scratch->count_.size() < static_cast<size_t>(num_entities)) {
      scratch->count_.resize(static_cast<size_t>(num_entities), 0);
      scratch->acc_.resize(static_cast<size_t>(num_entities), 0.0);
    }
    if (scratch->slot_count_.size() < static_cast<size_t>(num_slots)) {
      scratch->slot_count_.resize(static_cast<size_t>(num_slots), 0);
      scratch->slot_seq_.resize(static_cast<size_t>(num_slots), 0);
    }
    scratch->touched_.clear();
    count_ = scratch->count_.data();
    slot_count_ = scratch->slot_count_.data();
    slot_seq_ = scratch->slot_seq_.data();
  }

  void Observe(int32_t e, int32_t slot) {
    if (count_[e]++ == 0) scratch_->touched_.push_back(e);
    if (slot_count_[slot]++ == 0) slot_seq_[slot] = seq_++;
  }

  void Emit(ReplicateSample* out) {
    out->policy = FusionPolicy::kMajority;
    out->entities.clear();
    out->entities.reserve(scratch_->touched_.size());
    for (int32_t e : scratch_->touched_) {
      const int64_t begin = ent_slot_begin_[e];
      const int64_t end = ent_slot_begin_[e + 1];
      int64_t best_slot = -1;
      int64_t first_slot = -1;  // earliest-touched slot: the NaN fallback
      int32_t best_count = 0;
      int32_t best_seq = 0;
      int32_t first_seq = 0;
      for (int64_t s = begin; s < end; ++s) {
        const int32_t count = slot_count_[s];
        if (count == 0) continue;
        const int32_t seq = slot_seq_[s];
        if (first_slot < 0 || seq < first_seq) {
          first_slot = s;
          first_seq = seq;
        }
        // A NaN report never accumulates a count in the materialized fold
        // (NaN == NaN is false), so a NaN slot can never win the contest
        // there either — skip it here to match.
        const double v = slot_value_[s];
        if (v == v && (count > best_count ||
                       (count == best_count && seq < best_seq))) {
          best_count = count;
          best_seq = seq;
          best_slot = s;
        }
        slot_count_[s] = 0;  // restore the resting invariant
      }
      // All reports NaN: the materialized fold keeps reports.front() — the
      // first occurrence in replay order, i.e. the earliest-touched slot.
      if (best_slot < 0) best_slot = first_slot;
      out->entities.push_back({slot_value_[best_slot], count_[e]});
      count_[e] = 0;
    }
    out->entity_indices = scratch_->touched_;
  }

 private:
  ReplicateScratch* const scratch_;
  const double* UUQ_RESTRICT slot_value_;
  const int64_t* UUQ_RESTRICT ent_slot_begin_;
  int64_t* UUQ_RESTRICT count_ = nullptr;
  int32_t* UUQ_RESTRICT slot_count_ = nullptr;
  int32_t* UUQ_RESTRICT slot_seq_ = nullptr;
  int32_t seq_ = 0;
};

SampleView::SampleView(const IntegratedSample& sample)
    : sample_(&sample),
      policy_(sample.policy()),
      num_entities_(sample.c()) {
  // Draw-index space: sources sorted by id (the legacy resampler grouped
  // observations with a std::map, so draw index i meant the i-th id in
  // sorted order — preserved here for seed compatibility).
  source_ids_.reserve(sample.source_sizes().size());
  for (const auto& [id, size] : sample.source_sizes()) {
    UUQ_UNUSED(size);
    source_ids_.push_back(id);
  }
  std::vector<int32_t> arrival_to_sorted(sample.source_names().size());
  for (size_t a = 0; a < sample.source_names().size(); ++a) {
    const auto it = std::lower_bound(source_ids_.begin(), source_ids_.end(),
                                     sample.source_names()[a]);
    UUQ_DCHECK(it != source_ids_.end() && *it == sample.source_names()[a]);
    arrival_to_sorted[a] =
        static_cast<int32_t>(std::distance(source_ids_.begin(), it));
  }

  const std::vector<RawObservation>& log = sample.raw_log();
  const size_t n = log.size();
  obs_entity_.reserve(n);
  obs_source_.reserve(n);
  obs_value_.reserve(n);
  for (const RawObservation& obs : log) {
    obs_entity_.push_back(obs.entity_index);
    obs_source_.push_back(
        arrival_to_sorted[static_cast<size_t>(obs.source_index)]);
    obs_value_.push_back(obs.value);
  }

  if (policy_ == FusionPolicy::kMajority) BuildMajoritySlots();

  // Counting sort into source-grouped columns; arrival order is preserved
  // within each source, so a replayed source is byte-identical to its slice
  // of the original stream.
  const size_t l = source_ids_.size();
  src_begin_.assign(l + 1, 0);
  for (int32_t s : obs_source_) ++src_begin_[static_cast<size_t>(s) + 1];
  for (size_t s = 0; s < l; ++s) src_begin_[s + 1] += src_begin_[s];
  src_entity_.resize(n);
  src_value_.resize(n);
  if (!obs_slot_.empty()) src_slot_.resize(n);
  std::vector<int64_t> cursor(src_begin_.begin(), src_begin_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    const size_t slot =
        static_cast<size_t>(cursor[static_cast<size_t>(obs_source_[i])]++);
    src_entity_[slot] = obs_entity_[i];
    src_value_[slot] = obs_value_[i];
    if (!obs_slot_.empty()) src_slot_[slot] = obs_slot_[i];
  }

  // Rank order for incremental replicate re-sorts: ascending original fused
  // value, entity index as the deterministic tie-break.
  entity_rank_order_.resize(static_cast<size_t>(num_entities_));
  for (int64_t e = 0; e < num_entities_; ++e) {
    entity_rank_order_[static_cast<size_t>(e)] = static_cast<int32_t>(e);
  }
  const std::vector<EntityStat>& entities = sample.entities();
  std::sort(entity_rank_order_.begin(), entity_rank_order_.end(),
            [&entities](int32_t a, int32_t b) {
              const double va = entities[static_cast<size_t>(a)].value;
              const double vb = entities[static_cast<size_t>(b)].value;
              return va < vb || (va == vb && a < b);
            });

  bs_lex_order_ = BsLexOrder(l);
}

void SampleView::BuildMajoritySlots() {
  // Per-entity distinct-report dictionaries in first-arrival order. A linear
  // probe per observation is fine at construction: entities see a handful of
  // distinct report values in practice, and this runs once per view.
  std::vector<std::vector<double>> dict(static_cast<size_t>(num_entities_));
  std::vector<int32_t> local_slot(obs_value_.size());
  for (size_t i = 0; i < obs_value_.size(); ++i) {
    std::vector<double>& values = dict[static_cast<size_t>(obs_entity_[i])];
    const double v = obs_value_[i];
    int32_t slot = -1;
    for (size_t d = 0; d < values.size(); ++d) {
      if (values[d] == v) {
        slot = static_cast<int32_t>(d);
        break;
      }
    }
    if (slot < 0) {
      slot = static_cast<int32_t>(values.size());
      values.push_back(v);
    }
    local_slot[i] = slot;
  }

  ent_slot_begin_.assign(static_cast<size_t>(num_entities_) + 1, 0);
  for (int64_t e = 0; e < num_entities_; ++e) {
    ent_slot_begin_[static_cast<size_t>(e) + 1] =
        ent_slot_begin_[static_cast<size_t>(e)] +
        static_cast<int64_t>(dict[static_cast<size_t>(e)].size());
  }
  slot_value_.resize(static_cast<size_t>(ent_slot_begin_.back()));
  for (int64_t e = 0; e < num_entities_; ++e) {
    const std::vector<double>& values = dict[static_cast<size_t>(e)];
    std::copy(values.begin(), values.end(),
              slot_value_.begin() + ent_slot_begin_[static_cast<size_t>(e)]);
  }
  obs_slot_.resize(obs_value_.size());
  for (size_t i = 0; i < obs_value_.size(); ++i) {
    obs_slot_[i] = static_cast<int32_t>(
        ent_slot_begin_[static_cast<size_t>(obs_entity_[i])] + local_slot[i]);
  }
}

void SampleView::DrawBootstrapSources(Rng* rng,
                                      std::vector<int32_t>* draws) const {
  UUQ_CHECK(rng != nullptr && draws != nullptr);
  const size_t l = source_ids_.size();
  draws->clear();
  draws->reserve(l);
  for (size_t draw = 0; draw < l; ++draw) {
    draws->push_back(static_cast<int32_t>(rng->NextBounded(l)));
  }
}

void SampleView::EmitReplicateSourceSizes(const std::vector<int32_t>& draws,
                                          ReplicateSample* out) const {
  const std::vector<int32_t>* order = &bs_lex_order_;
  std::vector<int32_t> local_order;
  if (draws.size() != bs_lex_order_.size()) {
    local_order = BsLexOrder(draws.size());
    order = &local_order;
  }
  out->source_sizes.clear();
  out->source_sizes.reserve(draws.size());
  for (int32_t position : *order) {
    out->source_sizes.push_back(
        source_size(draws[static_cast<size_t>(position)]));
  }
}

template <typename Fold, typename T>
void SampleView::ReplayDrawnSources(const std::vector<int32_t>& draws,
                                    const T* payload, Fold* fold) const {
  for (int32_t s : draws) {
    UUQ_DCHECK(s >= 0 && s < static_cast<int32_t>(source_ids_.size()));
    const int64_t begin = src_begin_[static_cast<size_t>(s)];
    const int64_t end = src_begin_[static_cast<size_t>(s) + 1];
    for (int64_t j = begin; j < end; ++j) {
      fold->Observe(src_entity_[static_cast<size_t>(j)],
                    payload[static_cast<size_t>(j)]);
    }
  }
}

template <typename Fold, typename T>
void SampleView::ReplayArrivalExcluding(int32_t excluded, const T* payload,
                                        Fold* fold) const {
  const size_t n = obs_entity_.size();
  for (size_t i = 0; i < n; ++i) {
    if (obs_source_[i] == excluded) continue;
    fold->Observe(obs_entity_[i], payload[i]);
  }
}

void SampleView::BuildReplicate(const std::vector<int32_t>& draws,
                                ReplicateScratch* scratch,
                                ReplicateSample* out) const {
  UUQ_CHECK(scratch != nullptr && out != nullptr);
  out->view = this;

  // Replay the drawn sources in draw order — the exact observation sequence
  // the legacy resampler fed through IntegratedSample::Add — folding each
  // entity's reports with the fusion policy as we go.
  if (policy_ == FusionPolicy::kMajority) {
    MajorityFold fold(scratch, num_entities_,
                      static_cast<int64_t>(slot_value_.size()),
                      slot_value_.data(), ent_slot_begin_.data());
    ReplayDrawnSources(draws, src_slot_.data(), &fold);
    fold.Emit(out);
  } else {
    ReplicateFold fold(policy_, scratch, num_entities_);
    ReplayDrawnSources(draws, src_value_.data(), &fold);
    fold.Emit(out);
  }
  EmitReplicateSourceSizes(draws, out);
}

void SampleView::BuildLeaveOneOut(int32_t excluded, ReplicateScratch* scratch,
                                  ReplicateSample* out) const {
  UUQ_CHECK(scratch != nullptr && out != nullptr);
  UUQ_CHECK(excluded >= 0 &&
            excluded < static_cast<int32_t>(source_ids_.size()));
  out->view = this;

  // The legacy jackknife replays the GLOBAL arrival order minus one source;
  // use the arrival columns so the fold and first-touch order match it.
  if (policy_ == FusionPolicy::kMajority) {
    MajorityFold fold(scratch, num_entities_,
                      static_cast<int64_t>(slot_value_.size()),
                      slot_value_.data(), ent_slot_begin_.data());
    ReplayArrivalExcluding(excluded, obs_slot_.data(), &fold);
    fold.Emit(out);
  } else {
    ReplicateFold fold(policy_, scratch, num_entities_);
    ReplayArrivalExcluding(excluded, obs_value_.data(), &fold);
    fold.Emit(out);
  }
  out->source_sizes.clear();
  out->source_sizes.reserve(source_ids_.size() - 1);
  for (int32_t s = 0; s < static_cast<int32_t>(source_ids_.size()); ++s) {
    if (s != excluded) out->source_sizes.push_back(source_size(s));
  }
}

IntegratedSample SampleView::MaterializeReplicate(
    const std::vector<int32_t>& draws) const {
  IntegratedSample resampled(policy_);
  MaterializeReplicateInto(draws, &resampled);
  return resampled;
}

void SampleView::MaterializeReplicateInto(const std::vector<int32_t>& draws,
                                          IntegratedSample* out) const {
  UUQ_CHECK(out != nullptr);
  // Rebuilding into the view's own backing sample would clear the entity
  // keys the replay below reads.
  UUQ_CHECK_MSG(out != sample_, "out must not alias the view's sample");
  out->Reset(policy_);
  const std::vector<EntityStat>& entities = sample_->entities();
  for (size_t draw = 0; draw < draws.size(); ++draw) {
    const int32_t s = draws[draw];
    UUQ_CHECK(s >= 0 && s < static_cast<int32_t>(source_ids_.size()));
    // Fresh identity per draw: the same original source drawn twice acts as
    // two independent sources (standard bootstrap-of-clusters semantics).
    const std::string identity = "bs" + std::to_string(draw);
    const int64_t begin = src_begin_[static_cast<size_t>(s)];
    const int64_t end = src_begin_[static_cast<size_t>(s) + 1];
    for (int64_t j = begin; j < end; ++j) {
      out->Add(identity,
               entities[static_cast<size_t>(
                            src_entity_[static_cast<size_t>(j)])]
                   .key,
               src_value_[static_cast<size_t>(j)]);
    }
  }
}

IntegratedSample SampleView::MaterializeLeaveOneOut(int32_t excluded) const {
  IntegratedSample loo(policy_);
  MaterializeLeaveOneOutInto(excluded, &loo);
  return loo;
}

void SampleView::MaterializeLeaveOneOutInto(int32_t excluded,
                                            IntegratedSample* out) const {
  UUQ_CHECK(excluded >= 0 &&
            excluded < static_cast<int32_t>(source_ids_.size()));
  UUQ_CHECK(out != nullptr);
  UUQ_CHECK_MSG(out != sample_, "out must not alias the view's sample");
  out->Reset(policy_);
  const std::vector<EntityStat>& entities = sample_->entities();
  const size_t n = obs_value_.size();
  for (size_t i = 0; i < n; ++i) {
    if (obs_source_[i] == excluded) continue;
    const EntityStat& entity =
        entities[static_cast<size_t>(obs_entity_[i])];
    out->Add(source_ids_[static_cast<size_t>(obs_source_[i])], entity.key,
             obs_value_[i], entity.category);
  }
}

}  // namespace uuq
