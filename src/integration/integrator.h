// The user-facing assembler: sources in, integrated sample + relational view
// out (Figure 1 / Figure 3 of the paper).
#ifndef UUQ_INTEGRATION_INTEGRATOR_H_
#define UUQ_INTEGRATION_INTEGRATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/catalog.h"
#include "integration/resolution.h"
#include "integration/sample.h"
#include "integration/source.h"

namespace uuq {

class Integrator {
 public:
  struct Options {
    FusionPolicy fusion = FusionPolicy::kAverage;
    std::string table_name = "integrated";
    std::string value_column = "value";
    /// When true, entity keys pass through a FuzzyResolver so near-duplicate
    /// mentions ("I.B.M. Corp" / "IBM") merge instead of inflating f1.
    bool fuzzy_resolution = false;
    FuzzyResolver::Options resolver;
  };

  Integrator() : Integrator(Options{}) {}
  explicit Integrator(Options options)
      : options_(std::move(options)),
        sample_(options_.fusion),
        resolver_(options_.resolver) {}

  /// Integrates a full source (all claims in order).
  Status AddSource(const DataSource& source);

  /// Streams a single observation (for arrival-order replay).
  void AddObservation(const Observation& obs);

  const IntegratedSample& sample() const { return sample_; }

  /// The integrated database K as a table.
  Table IntegratedView() const {
    return sample_.ToTable(options_.table_name, options_.value_column);
  }

  /// Registers the integrated view in `catalog` under options().table_name.
  void Publish(Catalog* catalog) const;

  const Options& options() const { return options_; }

  /// The resolver state (meaningful only with fuzzy_resolution enabled).
  const FuzzyResolver& resolver() const { return resolver_; }

 private:
  std::string ResolveKey(const std::string& raw_key);

  Options options_;
  IntegratedSample sample_;
  FuzzyResolver resolver_;
};

}  // namespace uuq

#endif  // UUQ_INTEGRATION_INTEGRATOR_H_
