#include "integration/resolution.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "common/strings.h"
#include "integration/source.h"

namespace uuq {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const int len_a = static_cast<int>(a.size());
  const int len_b = static_cast<int>(b.size());
  const int window = std::max(len_a, len_b) / 2 - 1;

  std::vector<bool> matched_a(len_a, false), matched_b(len_b, false);
  int matches = 0;
  for (int i = 0; i < len_a; ++i) {
    const int lo = std::max(0, i - window);
    const int hi = std::min(len_b - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (matched_b[j] || a[i] != b[j]) continue;
      matched_a[i] = true;
      matched_b[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among the matched characters.
  int transpositions = 0;
  int k = 0;
  for (int i = 0; i < len_a; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  const double m = static_cast<double>(matches);
  return (m / len_a + m / len_b + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  UUQ_CHECK_MSG(prefix_scale >= 0.0 && prefix_scale <= 0.25,
                "prefix scale must be in [0, 0.25]");
  const double jaro = JaroSimilarity(a, b);
  int prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (static_cast<size_t>(prefix) < max_prefix &&
         a[prefix] == b[prefix]) {
    ++prefix;
  }
  return jaro + prefix * prefix_scale * (1.0 - jaro);
}

double TokenJaccardSimilarity(std::string_view a, std::string_view b) {
  auto tokens = [](std::string_view s) {
    std::set<std::string> out;
    std::string token;
    for (char c : s) {
      if (c == ' ') {
        if (!token.empty()) out.insert(token);
        token.clear();
      } else {
        token += c;
      }
    }
    if (!token.empty()) out.insert(token);
    return out;
  };
  const std::string na = NormalizeEntityKey(std::string(a));
  const std::string nb = NormalizeEntityKey(std::string(b));
  const std::set<std::string> ta = tokens(na);
  const std::set<std::string> tb = tokens(nb);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  int intersection = 0;
  for (const std::string& t : ta) {
    if (tb.count(t)) ++intersection;
  }
  const int uni = static_cast<int>(ta.size() + tb.size()) - intersection;
  return static_cast<double>(intersection) / uni;
}

namespace {

const char* const kCorporateSuffixes[] = {
    "inc", "inc.", "incorporated", "corp", "corp.", "corporation", "llc",
    "llc.", "ltd", "ltd.", "limited", "co", "co.", "company", "gmbh", "plc",
};

bool IsCorporateSuffix(const std::string& token) {
  for (const char* suffix : kCorporateSuffixes) {
    if (token == suffix) return true;
  }
  return false;
}

}  // namespace

std::string FuzzyResolver::ComparisonForm(
    const std::string& raw_mention) const {
  std::string normalized = NormalizeEntityKey(raw_mention);
  // Drop punctuation that survives normalization ("i.b.m." -> "ibm").
  std::string cleaned;
  cleaned.reserve(normalized.size());
  for (char c : normalized) {
    if (c == '.' || c == ',' || c == '\'') continue;
    cleaned += c;
  }
  if (!options_.strip_corporate_suffixes) return cleaned;

  // Strip trailing corporate-suffix tokens ("acme robotics inc" -> "acme
  // robotics"), but never strip the only token.
  std::vector<std::string> tokens = Split(cleaned, ' ');
  while (tokens.size() > 1 && IsCorporateSuffix(tokens.back())) {
    tokens.pop_back();
  }
  return Join(tokens, " ");
}

std::string FuzzyResolver::Resolve(const std::string& raw_mention) {
  const std::string form = ComparisonForm(raw_mention);
  const std::string normalized = NormalizeEntityKey(raw_mention);

  auto exact_it = exact_.find(form);
  if (exact_it != exact_.end()) return canonical_[exact_it->second];

  // Scan known entities for a fuzzy match; keep the best above threshold.
  double best_score = 0.0;
  size_t best_index = canonical_.size();
  for (size_t i = 0; i < comparison_form_.size(); ++i) {
    const double jw = JaroWinklerSimilarity(form, comparison_form_[i]);
    double score = jw;
    if (options_.use_token_jaccard) {
      score = std::max(
          score, TokenJaccardSimilarity(form, comparison_form_[i]) >=
                         options_.token_threshold
                     ? 1.0
                     : 0.0);
    }
    if (score > best_score) {
      best_score = score;
      best_index = i;
    }
  }
  if (best_index < canonical_.size() && best_score >= options_.threshold) {
    // Remember this surface form so future lookups are O(1).
    exact_.emplace(form, best_index);
    return canonical_[best_index];
  }

  // New canonical entity.
  canonical_.push_back(normalized);
  comparison_form_.push_back(form);
  exact_.emplace(form, canonical_.size() - 1);
  return normalized;
}

}  // namespace uuq
