// The integrated sample S and its deduplicated view K (paper §2.1-2.2).
//
// IntegratedSample consumes an observation stream and maintains — all
// incrementally, O(log) per observation — everything the estimators read:
//   n      total observations (|S|, duplicates included)
//   c      distinct entities (|K|)
//   f_j    frequency statistics
//   φK     the observed SUM over fused entity values
//   φf1    the sum of singleton values (frequency estimator, Eq. 9)
//   n_j    per-source contribution sizes (Monte-Carlo estimator, streakers)
// Conflicting values for one entity are fused according to a FusionPolicy;
// the paper's experiments average disagreeing crowd answers.
#ifndef UUQ_INTEGRATION_SAMPLE_H_
#define UUQ_INTEGRATION_SAMPLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/table.h"
#include "integration/source.h"
#include "stats/fstats.h"

namespace uuq {

/// How to reconcile disagreeing values reported for the same entity.
enum class FusionPolicy {
  kAverage,   ///< mean of all reports (the paper's data-cleaning rule)
  kFirst,     ///< first reported value wins
  kLast,      ///< latest reported value wins
  kMajority,  ///< most frequent report; ties broken by first occurrence
};

/// Per-entity state exposed to estimators.
struct EntityStat {
  std::string key;       // normalized entity key
  double value = 0.0;    // fused attribute value
  int64_t multiplicity = 0;  // times observed across all sources
  std::string category;  // first non-empty reported category
};

/// One raw observation in index form: no string copies, 16 bytes. The
/// columnar SampleView is built from this representation.
struct RawObservation {
  int32_t source_index;  // into source_names()
  int32_t entity_index;  // into entities()
  double value;          // raw reported value (pre-fusion)
};

class IntegratedSample {
 public:
  explicit IntegratedSample(FusionPolicy policy = FusionPolicy::kAverage)
      : policy_(policy) {}

  /// Returns the sample to the freshly-constructed logical state while
  /// KEEPING the heap capacity of every container it can: the entity/log
  /// vectors, the hash maps' bucket arrays, and — the expensive part — the
  /// per-entity report buffers, which are cleared in place and re-used by
  /// the next fill. This is what makes a pooled sample (SampleArena below)
  /// cheap to rebuild per bootstrap replicate; a Reset() sample is
  /// indistinguishable from `IntegratedSample(policy)` through every public
  /// accessor.
  void Reset(FusionPolicy policy);

  /// Ingests one observation (key is normalized internally). Constant-ish
  /// time: histogram updates are O(log n); kMajority fusion re-scans the
  /// entity's report vector (O(#reports²) per Add — the columnar
  /// SampleView's report-slot histogram is the fast path for replicates).
  /// The optional category is entity-level metadata; the first non-empty
  /// report wins.
  void Add(const std::string& source_id, const std::string& entity_key,
           double value, const std::string& category = "");

  /// Convenience overload.
  void Add(const Observation& obs) {
    Add(obs.source_id, obs.entity_key, obs.value, obs.category);
  }

  /// Distinct non-empty entity categories, sorted.
  std::vector<std::string> Categories() const;

  /// Sample size n = |S|.
  int64_t n() const { return n_; }
  /// Distinct entities c = |K|.
  int64_t c() const { return static_cast<int64_t>(entities_.size()); }
  bool empty() const { return n_ == 0; }

  /// Snapshot of the f-statistics.
  FrequencyStatistics Fstats() const;

  /// φK — observed SUM of fused values over K.
  double ObservedSum() const { return observed_sum_; }

  /// φf1 — sum of fused values over entities observed exactly once.
  double SingletonValueSum() const { return singleton_sum_; }

  /// All per-entity stats, in first-observation order.
  const std::vector<EntityStat>& entities() const { return entities_; }

  /// Fused values only (same order as entities()).
  std::vector<double> Values() const;

  /// Per-source observation counts n_j keyed by source id.
  const std::map<std::string, int64_t>& source_sizes() const {
    return source_sizes_;
  }

  /// n_j as a bare vector (order: by source id).
  std::vector<int64_t> SourceSizeVector() const;

  /// Number of distinct sources l.
  int64_t num_sources() const {
    return static_cast<int64_t>(source_sizes_.size());
  }

  /// Materializes the integrated database K as a relational table:
  ///   (entity STRING, <value_column> DOUBLE, observations INT64).
  Table ToTable(const std::string& table_name,
                const std::string& value_column) const;

  /// Rebuilds a sub-sample containing only the entities for which `keep`
  /// returns true (judged on their FINAL fused state), replaying the raw
  /// observation log so multiplicities, source sizes and fusion stay exact.
  /// This implements predicate push-down for corrected queries: species
  /// estimation then runs over the predicate-satisfying class only (§2.1
  /// drops the predicate because every item of D satisfies it).
  IntegratedSample Filter(
      const std::function<bool(const EntityStat&)>& keep) const;

  /// The raw observation stream in arrival order (reconstructed from the
  /// lineage log; values are the ORIGINAL reports, not fused values). Used
  /// by source-level bootstrap resampling.
  std::vector<Observation> ObservationLog() const;

  /// The same stream in index form, zero-copy: the backing store of
  /// SampleView's columnar flattening. Entries reference source_names() and
  /// entities() by position.
  const std::vector<RawObservation>& raw_log() const { return log_; }

  /// Source ids in first-contribution order.
  const std::vector<std::string>& source_names() const {
    return source_names_;
  }

  FusionPolicy policy() const { return policy_; }

  /// Approximate resident heap capacity of the sample's containers, in
  /// bytes (vector capacities exactly; node-based containers estimated per
  /// entry, string heap storage excluded). Used by SampleArena's
  /// resident-scratch accounting (common/scratch_metrics.h).
  int64_t ApproxBytes() const;

 private:
  double Fuse(const std::vector<double>& reports) const;

  FusionPolicy policy_;
  int64_t n_ = 0;
  double observed_sum_ = 0.0;
  double singleton_sum_ = 0.0;
  std::vector<EntityStat> entities_;
  // Raw reported values per entity (arrival order), parallel to entities_.
  // Kept OUTSIDE the hash map so Reset() can retain every report buffer's
  // allocation; reports_.size() only grows (slots past entities_.size() are
  // empty spares awaiting reuse).
  std::vector<std::vector<double>> reports_;
  std::unordered_map<std::string, size_t> index_;  // key -> entities_ index
  std::map<int64_t, int64_t> multiplicity_histogram_;
  std::map<std::string, int64_t> source_sizes_;
  std::vector<std::string> source_names_;  // arrival order of first mention
  std::unordered_map<std::string, int32_t> source_index_;
  std::vector<RawObservation> log_;  // raw observation stream, arrival order
};

/// Pool of reusable IntegratedSample shells for the materializing replicate
/// path (ReplicateEvaluation::kMaterialized and estimators without a
/// columnar replicate form). Acquire() hands out a Reset() sample whose
/// containers keep their capacity from earlier replicates, so a B-replicate
/// materializing run stops growing a sample from scratch B times.
///
/// NOT thread-safe — keep one arena per thread (the bootstrap engine holds
/// one thread_local per worker). The arena must outlive its leases.
class SampleArena {
 public:
  /// RAII handle on a pooled sample; returns it to the arena on
  /// destruction. Move-only. The sample reference is only valid while the
  /// lease lives — callers that need the replicate past the lease must copy
  /// it out.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : arena_(other.arena_), sample_(other.sample_) {
      other.arena_ = nullptr;
      other.sample_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease();

    IntegratedSample* get() const { return sample_; }
    IntegratedSample& operator*() const { return *sample_; }
    IntegratedSample* operator->() const { return sample_; }

   private:
    friend class SampleArena;
    Lease(SampleArena* arena, IntegratedSample* sample)
        : arena_(arena), sample_(sample) {}
    SampleArena* arena_;
    IntegratedSample* sample_;
  };

  SampleArena() = default;
  ~SampleArena();
  SampleArena(const SampleArena&) = delete;
  SampleArena& operator=(const SampleArena&) = delete;

  /// A Reset(policy) sample, recycled when the pool has one (LIFO, so the
  /// warmest buffers are reused first), freshly allocated otherwise.
  /// Honors the cooperative trim epoch (common/scratch_metrics.h): when a
  /// trim was requested since this arena last looked, the pooled idle
  /// shells are destroyed first — outstanding leases are never touched, so
  /// a trim landing mid-replicate only affects future recycling.
  Lease Acquire(FusionPolicy policy);

  /// Pooled (idle) samples — observability for tests.
  size_t pooled() const { return free_.size(); }

  /// Destroys every pooled idle shell now (the trim hook; leased samples
  /// stay valid and return to an empty pool later).
  void Trim();

 private:
  void Release(IntegratedSample* sample);
  /// Reconciles the process-wide resident-scratch gauge with this arena's
  /// current approximate footprint.
  void SyncResidentBytes();

  std::vector<std::unique_ptr<IntegratedSample>> free_;
  std::vector<std::unique_ptr<IntegratedSample>> leased_;
  uint64_t trim_epoch_seen_ = 0;  // last scratch::TrimEpoch() observed
  int64_t reported_bytes_ = 0;    // our contribution to the global gauge
};

}  // namespace uuq

#endif  // UUQ_INTEGRATION_SAMPLE_H_
