// Scenario-matrix accuracy harness: the "second trajectory" next to the perf
// gates (ROADMAP item 5).
//
// CI gates speed hard; this module makes estimator ACCURACY regress CI the
// same way. A grid of (scenario × estimator) cells runs many seeded trials
// per cell through QueryCorrector with bootstrap intervals attached and
// folds each cell into four metrics:
//
//   coverage    fraction of trials whose nominal-95% bootstrap interval
//               contains the scenario's ground-truth SUM (the cluster
//               bootstrap is variability-oriented, not calibrated — see
//               bootstrap.h — so coverage is tracked as a TRAJECTORY, not
//               asserted against 0.95)
//   nhat_bias   mean relative bias of N̂ against the true population size,
//               over trials with a finite N̂
//   sum_err     mean relative error of the corrected SUM against truth
//   clamp_rate  fraction of trials whose answer carried the `unconstrained`
//               clamp (query_correction.h) — the silent flag promoted to a
//               first-class measured output
//
// The scenario axis spans the four calibrated paper workloads
// (simulation/scenarios.h) plus synthetic integration pathologies:
// streaker-heavy and streaker-injected source imbalance (the fig07 shapes),
// correlated source overlap, heavy-tailed values, publication-bias-style
// source selection, and a sparse-singleton axis that actually exercises the
// clamp. The estimator axis is QueryCorrector's CorrectionEstimator set —
// auto (the §6.5 advisor, i.e. the serving default), bucket, monte-carlo,
// naive, frequency.
//
// DETERMINISM. Same contract as the engines: one Rng::Split() stream per
// cell, derived in cell order before the parallel section; scenario streams
// use the plain trial index as their seed (shared across the estimator axis
// so every estimator sees the SAME data). Trials fan out over the
// ThreadPool, each writing only its own slot, so the whole matrix is
// bit-identical for every thread count.
//
// GATING. AccuracyTolerances (below) is the ONE place the per-metric CI
// tolerances live. bench/bench_accuracy.cc measures the matrix, emits
// metric rows into the shared bench_out.json trajectory artifact, and fails
// against the committed bench/accuracy_baseline.json through
// AccuracyGateFailures() — an injected accuracy regression fails CI exactly
// like a perf regression.
#ifndef UUQ_SIMULATION_ACCURACY_MATRIX_H_
#define UUQ_SIMULATION_ACCURACY_MATRIX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/monte_carlo.h"
#include "core/query_correction.h"
#include "simulation/scenarios.h"

namespace uuq {

class ThreadPool;

/// One scenario axis of the grid.
struct AccuracyScenarioSpec {
  std::string name;
  /// Builds one trial's Scenario. Must be a pure function of `seed` — the
  /// matrix relies on it for thread-count determinism and for the
  /// reproduce-a-trial contract (AccuracyTrial records the seed).
  std::function<Scenario(uint64_t seed)> factory;
  /// Observations of the stream replayed into the trial sample.
  int64_t prefix_n = 500;
};

/// One estimator axis entry: a QueryCorrector estimator choice plus the
/// stable name used in rows and baseline keys.
struct AccuracyEstimatorSpec {
  std::string name;
  CorrectionEstimator estimator = CorrectionEstimator::kBucket;
};

/// One (scenario, estimator, seed) run — recorded when
/// AccuracyMatrixOptions::record_trials is set, so tests can re-run the
/// EXACT trial through QueryCorrector themselves and cross-check the cell
/// aggregation (the clamp_rate-vs-direct-count contract).
struct AccuracyTrial {
  uint64_t scenario_seed = 0;   ///< fed to AccuracyScenarioSpec::factory
  uint64_t bootstrap_seed = 0;  ///< BootstrapOptions::seed for this trial
  double truth = 0.0;           ///< scenario ground-truth SUM
  double true_population = 0.0; ///< true N (population size)
  double corrected = 0.0;
  double n_hat = 0.0;           ///< raw estimate.n_hat (may be non-finite)
  double lo = 0.0;
  double hi = 0.0;
  bool bootstrap_valid = false;
  bool covered = false;         ///< truth ∈ [lo, hi] (valid intervals only)
  bool unconstrained = false;   ///< the clamp flag, verbatim
};

/// One cell's aggregated metrics.
struct AccuracyCell {
  std::string scenario;
  std::string estimator;
  int seeds = 0;
  double coverage = 0.0;
  double nhat_bias = 0.0;
  double sum_err = 0.0;
  double clamp_rate = 0.0;
  /// Raw clamp count (clamp_rate's numerator) — the value the telemetry
  /// cross-check pins against core/correction_telemetry.h.
  int64_t unconstrained_count = 0;
  /// Filled only under AccuracyMatrixOptions::record_trials.
  std::vector<AccuracyTrial> trials;
};

/// Reduced Monte-Carlo search for matrix cells: the full Algorithm 3 grid
/// costs ~70ms per replicate at n=500, which a (B+1)-estimate trial cannot
/// afford across hundreds of trials. The trajectory tracks the estimator's
/// BEHAVIOUR (conservatism, streaker robustness), which survives the
/// coarser grid; paper-fidelity MC runs stay with the fig benches.
MonteCarloOptions AccuracyMatrixMcOptions();

struct AccuracyMatrixOptions {
  /// Trials per cell. The committed baseline records this; the gate only
  /// compares runs with matching seed counts (see bench_accuracy.cc).
  int seeds_per_cell = 12;
  /// Scenario stream seeds are first_scenario_seed + trial index — shared
  /// across the estimator axis so cells in one scenario row see identical
  /// samples.
  uint64_t first_scenario_seed = 1;
  /// Root of the per-cell Rng::Split() streams (bootstrap seeds).
  uint64_t base_seed = 0xACC0ull;
  int bootstrap_replicates = 24;
  double confidence = 0.95;
  MonteCarloOptions mc = AccuracyMatrixMcOptions();
  /// Pool the trials fan out on (engines inside each trial run inline on
  /// it); nullptr means ThreadPool::Default(). Pure scheduling — results
  /// are bit-identical for any pool.
  ThreadPool* pool = nullptr;
  bool record_trials = false;
};

/// The default grid: 4 calibrated paper workloads + 6 synthetic pathology
/// axes (streaker-heavy, streaker-injected, correlated-overlap, heavy-tail,
/// publication-bias, sparse-singletons).
std::vector<AccuracyScenarioSpec> DefaultAccuracyScenarios();

/// auto, bucket, monte-carlo, naive, freq.
std::vector<AccuracyEstimatorSpec> DefaultAccuracyEstimators();

/// UUQ_ACCURACY_SEEDS env override (the full-sweep knob), else `fallback`.
int AccuracySeedsFromEnv(int fallback);

/// Runs the full grid. Cells are ordered scenario-major (scenario 0 ×
/// every estimator, then scenario 1, ...); cell c's bootstrap seeds come
/// from the c-th Split() stream of Rng(base_seed).
std::vector<AccuracyCell> RunAccuracyMatrix(
    const std::vector<AccuracyScenarioSpec>& scenarios,
    const std::vector<AccuracyEstimatorSpec>& estimators,
    const AccuracyMatrixOptions& options);

// ---------------------------------------------------------------------------
// Gate: the per-metric CI tolerances live HERE and only here.
// ---------------------------------------------------------------------------

/// Maximum |measured − baseline| per metric before the gate fails. The
/// matrix is deterministic, so on unchanged code measured == baseline
/// exactly; the tolerances exist so a deliberate engine change that
/// legitimately perturbs floating point (and with it a seed or two) can
/// land without a re-baseline, while a real regression — coverage collapse,
/// clamp explosion, bias jump — fails CI. At the default 12 seeds one
/// flipped trial moves a rate metric by 1/12 ≈ 0.083, inside the 0.10
/// allowance; two flips fail. Deviations are judged symmetrically: a large
/// unexplained IMPROVEMENT is also a distribution change that demands a
/// deliberate re-baseline, not a silent pass.
struct AccuracyTolerances {
  double coverage = 0.10;
  double nhat_bias = 0.15;
  double sum_err = 0.10;
  double clamp_rate = 0.10;
};

enum class AccuracyMetric { kCoverage, kNhatBias, kSumErr, kClampRate };

inline constexpr AccuracyMetric kAccuracyMetrics[] = {
    AccuracyMetric::kCoverage, AccuracyMetric::kNhatBias,
    AccuracyMetric::kSumErr, AccuracyMetric::kClampRate};

const char* AccuracyMetricName(AccuracyMetric metric);
double AccuracyMetricValue(const AccuracyCell& cell, AccuracyMetric metric);
double AccuracyMetricTolerance(const AccuracyTolerances& tolerances,
                               AccuracyMetric metric);

/// Baseline key for one cell metric: "<scenario>|<estimator>|<metric>".
std::string AccuracyBaselineKey(const std::string& scenario,
                                const std::string& estimator,
                                AccuracyMetric metric);

/// Compares every cell metric against `baseline` (a lookup returning the
/// committed value for a key, NaN when absent) and returns one
/// human-readable line per violation — empty means the gate passes. A
/// MISSING baseline key is a violation too: a new cell must land with its
/// baseline, otherwise it would ride ungated.
std::vector<std::string> AccuracyGateFailures(
    const std::vector<AccuracyCell>& cells,
    const std::function<double(const std::string& key)>& baseline,
    const AccuracyTolerances& tolerances);

}  // namespace uuq

#endif  // UUQ_SIMULATION_ACCURACY_MATRIX_H_
