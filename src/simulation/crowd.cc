#include "simulation/crowd.h"

#include <algorithm>

#include "common/macros.h"
#include "stats/sampling.h"

namespace uuq {

CrowdSimulator::CrowdSimulator(const Population* population,
                               CrowdConfig config)
    : population_(population), config_(config) {
  UUQ_CHECK(population_ != nullptr);
  UUQ_CHECK(config_.num_workers >= 0);
  UUQ_CHECK(config_.answers_per_worker >= 0);
}

std::vector<Observation> CrowdSimulator::WorkerAnswers(int worker, int quota,
                                                       Rng* rng) const {
  const std::vector<int> drawn = WeightedSampleWithoutReplacement(
      population_->publicities(), quota, rng);
  std::vector<Observation> out;
  out.reserve(drawn.size());
  const std::string source_id = "w" + std::to_string(worker);
  for (int idx : drawn) {
    const PopulationItem& item = population_->item(idx);
    out.push_back({source_id, item.key, item.value});
  }
  return out;
}

std::vector<Observation> CrowdSimulator::GenerateStream() const {
  Rng rng(config_.seed);
  std::vector<Observation> stream;

  if (config_.sequential_full_dump) {
    // Figure 7(a): every source provides every item, one source at a time.
    const int full = static_cast<int>(population_->size());
    for (int w = 0; w < config_.num_workers; ++w) {
      std::vector<Observation> answers = WorkerAnswers(w, full, &rng);
      stream.insert(stream.end(), answers.begin(), answers.end());
    }
    return stream;
  }

  std::vector<std::vector<Observation>> per_worker(config_.num_workers);
  for (int w = 0; w < config_.num_workers; ++w) {
    per_worker[w] = WorkerAnswers(w, config_.answers_per_worker, &rng);
  }

  if (config_.order == ArrivalOrder::kSequential) {
    for (const auto& answers : per_worker) {
      stream.insert(stream.end(), answers.begin(), answers.end());
    }
  } else {
    // Round-robin interleave.
    for (size_t round = 0;; ++round) {
      bool any = false;
      for (const auto& answers : per_worker) {
        if (round < answers.size()) {
          stream.push_back(answers[round]);
          any = true;
        }
      }
      if (!any) break;
    }
  }

  if (config_.streaker_at >= 0) {
    const int quota = config_.streaker_items > 0
                          ? config_.streaker_items
                          : static_cast<int>(population_->size());
    std::vector<Observation> streaker;
    streaker.reserve(quota);
    const std::vector<int> drawn = WeightedSampleWithoutReplacement(
        population_->publicities(), quota, &rng);
    for (int idx : drawn) {
      const PopulationItem& item = population_->item(idx);
      streaker.push_back({"streaker", item.key, item.value});
    }
    const size_t pos =
        std::min<size_t>(static_cast<size_t>(config_.streaker_at),
                         stream.size());
    stream.insert(stream.begin() + pos, streaker.begin(), streaker.end());
  }
  return stream;
}

}  // namespace uuq
