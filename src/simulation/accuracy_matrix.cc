#include "simulation/accuracy_matrix.h"

#include <cmath>
#include <cstdlib>

#include "common/macros.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "integration/sample.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

namespace uuq {
namespace {

/// Like scenarios::Synthetic but for an arbitrary prebuilt population (the
/// heavy-tail pathology axes have no scenarios.h entry point).
Scenario BuildScenario(std::string name, Population population,
                       const CrowdConfig& crowd) {
  Scenario scenario;
  scenario.name = std::move(name);
  scenario.value_column = "value";
  scenario.ground_truth_sum = population.TrueSum();
  scenario.population = std::move(population);
  CrowdSimulator simulator(&scenario.population, crowd);
  scenario.stream = simulator.GenerateStream();
  return scenario;
}

CrowdConfig MidCrowd(uint64_t seed) {
  CrowdConfig crowd;
  crowd.num_workers = 40;
  crowd.answers_per_worker = 10;
  crowd.order = ArrivalOrder::kRoundRobin;
  crowd.seed = seed * 1000003ull + 1;
  return crowd;
}

AccuracyTrial RunTrial(const AccuracyScenarioSpec& spec,
                       const AccuracyEstimatorSpec& estimator,
                       uint64_t scenario_seed, uint64_t bootstrap_seed,
                       const AccuracyMatrixOptions& options) {
  const Scenario scenario = spec.factory(scenario_seed);
  AccuracyTrial trial;
  trial.scenario_seed = scenario_seed;
  trial.bootstrap_seed = bootstrap_seed;
  trial.truth = scenario.ground_truth_sum;
  trial.true_population = static_cast<double>(scenario.population.size());

  IntegratedSample sample;
  const int64_t prefix =
      std::min<int64_t>(spec.prefix_n,
                        static_cast<int64_t>(scenario.stream.size()));
  for (int64_t i = 0; i < prefix; ++i) sample.Add(scenario.stream[i]);

  QueryCorrector::Options qopt;
  qopt.estimator = estimator.estimator;
  qopt.advisor.mc_options = options.mc;
  qopt.attach_bootstrap = true;
  qopt.bootstrap.replicates = options.bootstrap_replicates;
  qopt.bootstrap.confidence = options.confidence;
  qopt.bootstrap.seed = bootstrap_seed;
  qopt.pool = options.pool;

  const auto answer =
      QueryCorrector(qopt).Correct(sample, AggregateKind::kSum);
  // A non-empty uncancelled SUM correction cannot fail with a typed status;
  // a failure here is a harness bug, not a measurement.
  UUQ_CHECK_MSG(answer.ok(), "accuracy-matrix trial correction failed");
  const CorrectedAnswer& a = answer.value();

  trial.corrected = a.corrected;
  trial.n_hat = a.estimate.n_hat;
  trial.unconstrained = a.unconstrained;
  trial.bootstrap_valid = a.bootstrap_valid;
  if (a.bootstrap_valid) {
    trial.lo = a.bootstrap.lo;
    trial.hi = a.bootstrap.hi;
    trial.covered = trial.truth >= trial.lo && trial.truth <= trial.hi;
  }
  return trial;
}

}  // namespace

MonteCarloOptions AccuracyMatrixMcOptions() {
  MonteCarloOptions mc;
  mc.runs_per_point = 2;
  mc.n_grid_steps = 5;
  mc.lambda_step = 0.4;  // λ grid: {-0.4, 0, 0.4}
  return mc;
}

std::vector<AccuracyScenarioSpec> DefaultAccuracyScenarios() {
  std::vector<AccuracyScenarioSpec> specs;

  // The four calibrated paper workloads (simulation/scenarios.h).
  specs.push_back({"us-tech-employment",
                   [](uint64_t seed) {
                     return scenarios::UsTechEmployment(seed);
                   },
                   500});
  specs.push_back({"us-tech-revenue",
                   [](uint64_t seed) { return scenarios::UsTechRevenue(seed); },
                   500});
  // The full 95-observation stream (10 workers × 5 + the 45-item streaker).
  specs.push_back(
      {"us-gdp", [](uint64_t seed) { return scenarios::UsGdp(seed); }, 95});
  specs.push_back({"proton-beam",
                   [](uint64_t seed) { return scenarios::ProtonBeam(seed); },
                   500});

  // Figure 7(a): every source dumps the whole population sequentially. The
  // 250-observation prefix sits mid-third-dump — maximal source imbalance.
  specs.push_back({"streaker-heavy",
                   [](uint64_t seed) {
                     SyntheticPopulationConfig pop;
                     pop.num_items = 100;
                     pop.lambda = 1.0;
                     pop.rho = 0.5;
                     pop.seed = seed;
                     CrowdConfig crowd;
                     crowd.num_workers = 5;
                     crowd.answers_per_worker = 100;
                     crowd.sequential_full_dump = true;
                     crowd.seed = seed * 1000003ull + 1;
                     return scenarios::Synthetic(pop, crowd, "streaker-heavy");
                   },
                   250});

  // Figure 7(b): a steady 20×20 crowd with one 100-item streaker injected at
  // arrival 160 — fully inside the 400-observation prefix.
  specs.push_back({"streaker-injected",
                   [](uint64_t seed) {
                     SyntheticPopulationConfig pop;
                     pop.num_items = 300;
                     pop.lambda = 1.0;
                     pop.rho = 0.5;
                     pop.seed = seed;
                     CrowdConfig crowd;
                     crowd.num_workers = 20;
                     crowd.answers_per_worker = 20;
                     crowd.streaker_at = 160;
                     crowd.streaker_items = 100;
                     crowd.seed = seed * 1000003ull + 1;
                     return scenarios::Synthetic(pop, crowd,
                                                 "streaker-injected");
                   },
                   400});

  // Strong publicity skew: every source keeps re-reporting the same popular
  // items, so the sample saturates on a correlated subset of D.
  specs.push_back({"correlated-overlap",
                   [](uint64_t seed) {
                     SyntheticPopulationConfig pop;
                     pop.num_items = 400;
                     pop.lambda = 2.0;
                     pop.rho = 0.5;
                     pop.seed = seed;
                     CrowdConfig crowd;
                     crowd.num_workers = 25;
                     crowd.answers_per_worker = 16;
                     crowd.seed = seed * 1000003ull + 1;
                     return scenarios::Synthetic(pop, crowd,
                                                 "correlated-overlap");
                   },
                   400});

  // Heavy-tailed values with publicity INDEPENDENT of value: the missing
  // mass is value-neutral, the frequency estimator's singleton signal is
  // noise-dominated.
  specs.push_back({"heavy-tail",
                   [](uint64_t seed) {
                     HeavyTailPopulationConfig pop;
                     pop.num_items = 800;
                     pop.lognormal_mu = 3.5;
                     pop.lognormal_sigma = 2.0;
                     pop.publicity_exponent = 0.0;
                     pop.publicity_noise_sigma = 0.8;
                     pop.seed = seed;
                     return BuildScenario("heavy-tail",
                                          MakeHeavyTailPopulation(pop),
                                          MidCrowd(seed));
                   },
                   400});

  // Publication-bias: publicity strongly ∝ value, so sources systematically
  // report the big items first and the unknown unknowns are the small tail —
  // the selection-bias shape naive/freq overcorrect on.
  specs.push_back({"publication-bias",
                   [](uint64_t seed) {
                     HeavyTailPopulationConfig pop;
                     pop.num_items = 800;
                     pop.lognormal_mu = 3.5;
                     pop.lognormal_sigma = 2.0;
                     pop.publicity_exponent = 1.5;
                     pop.publicity_noise_sigma = 0.3;
                     pop.seed = seed;
                     return BuildScenario("publication-bias",
                                          MakeHeavyTailPopulation(pop),
                                          MidCrowd(seed));
                   },
                   400});

  // 60 uniform draws from 2000 items: cross-source collisions are a coin
  // flip, so roughly half the seeds produce an all-singleton sample and the
  // `unconstrained` clamp actually fires — the axis that keeps clamp_rate a
  // live metric instead of a column of zeros.
  specs.push_back({"sparse-singletons",
                   [](uint64_t seed) {
                     SyntheticPopulationConfig pop;
                     pop.num_items = 2000;
                     pop.lambda = 0.0;
                     pop.rho = 0.0;
                     pop.seed = seed;
                     CrowdConfig crowd;
                     crowd.num_workers = 6;
                     crowd.answers_per_worker = 10;
                     crowd.seed = seed * 1000003ull + 1;
                     return scenarios::Synthetic(pop, crowd,
                                                 "sparse-singletons");
                   },
                   60});

  return specs;
}

std::vector<AccuracyEstimatorSpec> DefaultAccuracyEstimators() {
  return {{"auto", CorrectionEstimator::kAuto},
          {"bucket", CorrectionEstimator::kBucket},
          {"monte-carlo", CorrectionEstimator::kMonteCarlo},
          {"naive", CorrectionEstimator::kNaive},
          {"freq", CorrectionEstimator::kFreq}};
}

int AccuracySeedsFromEnv(int fallback) {
  const char* env = std::getenv("UUQ_ACCURACY_SEEDS");
  if (env == nullptr) return fallback;
  const int seeds = std::atoi(env);
  return seeds > 0 ? seeds : fallback;
}

std::vector<AccuracyCell> RunAccuracyMatrix(
    const std::vector<AccuracyScenarioSpec>& scenarios,
    const std::vector<AccuracyEstimatorSpec>& estimators,
    const AccuracyMatrixOptions& options) {
  const int num_cells =
      static_cast<int>(scenarios.size() * estimators.size());
  const int seeds = options.seeds_per_cell;
  UUQ_CHECK(seeds > 0);

  // All randomness is pre-derived serially: one Split() stream per cell, one
  // bootstrap seed per trial drawn from it in trial order. The parallel
  // section below only consumes these by index.
  Rng root(options.base_seed);
  std::vector<Rng> cell_streams = root.SplitStreams(num_cells);
  std::vector<uint64_t> bootstrap_seeds(
      static_cast<size_t>(num_cells) * static_cast<size_t>(seeds));
  for (int cell = 0; cell < num_cells; ++cell) {
    for (int t = 0; t < seeds; ++t) {
      bootstrap_seeds[static_cast<size_t>(cell) * seeds + t] =
          cell_streams[cell].NextUint64();
    }
  }

  // Fan out over flattened (cell, trial) indices; each task writes only its
  // own slot, so the matrix is bit-identical for every thread count. Engines
  // inside a trial see the same pool and run inline on the worker.
  ThreadPool* pool = ThreadPool::OrDefault(options.pool);
  std::vector<AccuracyTrial> trials(bootstrap_seeds.size());
  pool->ParallelFor(
      0, static_cast<int64_t>(trials.size()), [&](int64_t i) {
        const int cell = static_cast<int>(i / seeds);
        const int t = static_cast<int>(i % seeds);
        const auto& scenario =
            scenarios[static_cast<size_t>(cell) / estimators.size()];
        const auto& estimator =
            estimators[static_cast<size_t>(cell) % estimators.size()];
        trials[static_cast<size_t>(i)] =
            RunTrial(scenario, estimator,
                     options.first_scenario_seed + static_cast<uint64_t>(t),
                     bootstrap_seeds[static_cast<size_t>(i)], options);
      });

  std::vector<AccuracyCell> cells(static_cast<size_t>(num_cells));
  for (int cell = 0; cell < num_cells; ++cell) {
    AccuracyCell& out = cells[static_cast<size_t>(cell)];
    out.scenario = scenarios[static_cast<size_t>(cell) / estimators.size()].name;
    out.estimator =
        estimators[static_cast<size_t>(cell) % estimators.size()].name;
    out.seeds = seeds;

    int valid_intervals = 0;
    int covered = 0;
    int finite_nhats = 0;
    double bias_sum = 0.0;
    double err_sum = 0.0;
    for (int t = 0; t < seeds; ++t) {
      const AccuracyTrial& trial =
          trials[static_cast<size_t>(cell) * seeds + t];
      if (trial.bootstrap_valid) {
        ++valid_intervals;
        if (trial.covered) ++covered;
      }
      if (std::isfinite(trial.n_hat) && trial.true_population > 0) {
        ++finite_nhats;
        bias_sum += (trial.n_hat - trial.true_population) /
                    trial.true_population;
      }
      if (trial.truth != 0.0) {
        err_sum += std::abs(trial.corrected - trial.truth) /
                   std::abs(trial.truth);
      }
      if (trial.unconstrained) ++out.unconstrained_count;
      if (options.record_trials) out.trials.push_back(trial);
    }
    out.coverage =
        valid_intervals > 0 ? static_cast<double>(covered) / valid_intervals
                            : 0.0;
    out.nhat_bias = finite_nhats > 0 ? bias_sum / finite_nhats : 0.0;
    out.sum_err = err_sum / seeds;
    out.clamp_rate = static_cast<double>(out.unconstrained_count) / seeds;
  }
  return cells;
}

const char* AccuracyMetricName(AccuracyMetric metric) {
  switch (metric) {
    case AccuracyMetric::kCoverage:
      return "coverage";
    case AccuracyMetric::kNhatBias:
      return "nhat_bias";
    case AccuracyMetric::kSumErr:
      return "sum_err";
    case AccuracyMetric::kClampRate:
      return "clamp_rate";
  }
  return "unknown";
}

double AccuracyMetricValue(const AccuracyCell& cell, AccuracyMetric metric) {
  switch (metric) {
    case AccuracyMetric::kCoverage:
      return cell.coverage;
    case AccuracyMetric::kNhatBias:
      return cell.nhat_bias;
    case AccuracyMetric::kSumErr:
      return cell.sum_err;
    case AccuracyMetric::kClampRate:
      return cell.clamp_rate;
  }
  return 0.0;
}

double AccuracyMetricTolerance(const AccuracyTolerances& tolerances,
                               AccuracyMetric metric) {
  switch (metric) {
    case AccuracyMetric::kCoverage:
      return tolerances.coverage;
    case AccuracyMetric::kNhatBias:
      return tolerances.nhat_bias;
    case AccuracyMetric::kSumErr:
      return tolerances.sum_err;
    case AccuracyMetric::kClampRate:
      return tolerances.clamp_rate;
  }
  return 0.0;
}

std::string AccuracyBaselineKey(const std::string& scenario,
                                const std::string& estimator,
                                AccuracyMetric metric) {
  return scenario + "|" + estimator + "|" + AccuracyMetricName(metric);
}

std::vector<std::string> AccuracyGateFailures(
    const std::vector<AccuracyCell>& cells,
    const std::function<double(const std::string& key)>& baseline,
    const AccuracyTolerances& tolerances) {
  std::vector<std::string> failures;
  for (const AccuracyCell& cell : cells) {
    for (AccuracyMetric metric : kAccuracyMetrics) {
      const std::string key =
          AccuracyBaselineKey(cell.scenario, cell.estimator, metric);
      const double expected = baseline(key);
      const double measured = AccuracyMetricValue(cell, metric);
      if (!std::isfinite(expected)) {
        failures.push_back(key + ": no baseline value (new cells must land " +
                           "with their baseline)");
        continue;
      }
      const double tolerance = AccuracyMetricTolerance(tolerances, metric);
      if (!(std::abs(measured - expected) <= tolerance)) {
        failures.push_back(key + ": measured " + std::to_string(measured) +
                           " vs baseline " + std::to_string(expected) +
                           " exceeds tolerance " + std::to_string(tolerance));
      }
    }
  }
  return failures;
}

}  // namespace uuq
