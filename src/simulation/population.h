// Ground-truth populations for simulation (paper §2.2, §6.2).
//
// A population is the ground truth D: N unique items, each with an attribute
// value and a publicity likelihood p_i. The synthetic generator reproduces
// the paper's §6.2 setup: values 10, 20, ..., 1000; exponential publicity
// with skew λ; and a publicity-value correlation knob ρ (ρ = 1: the most
// public item has the largest value; ρ = 0: no correlation).
#ifndef UUQ_SIMULATION_POPULATION_H_
#define UUQ_SIMULATION_POPULATION_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace uuq {

struct PopulationItem {
  std::string key;
  double value = 0.0;
  double publicity = 0.0;  // normalized sampling probability
};

class Population {
 public:
  Population() = default;
  explicit Population(std::vector<PopulationItem> items);

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::vector<PopulationItem>& items() const { return items_; }
  const PopulationItem& item(size_t i) const { return items_[i]; }

  /// Publicity vector (same order as items()).
  const std::vector<double>& publicities() const { return publicities_; }

  /// Ground-truth aggregates.
  double TrueSum() const;
  double TrueAvg() const;
  double TrueMin() const;
  double TrueMax() const;

  /// Empirical publicity-value rank correlation (Spearman); diagnostic.
  double PublicityValueCorrelation() const;

 private:
  std::vector<PopulationItem> items_;
  std::vector<double> publicities_;
};

/// The paper's §6.2 synthetic population.
struct SyntheticPopulationConfig {
  int num_items = 100;
  double value_min = 10.0;
  double value_step = 10.0;  // values: min, min+step, ..., min+(N−1)·step
  double lambda = 0.0;       // exponential publicity skew (0 = uniform)
  double rho = 0.0;          // publicity-value correlation in [0, 1]
  uint64_t seed = 1;
};

Population MakeSyntheticPopulation(const SyntheticPopulationConfig& config);

/// A heavy-tailed "company-like" population used by the realistic scenarios:
/// lognormal values scaled to a target total, publicity ∝ value^exponent
/// with multiplicative lognormal noise.
struct HeavyTailPopulationConfig {
  int num_items = 2000;
  double lognormal_mu = 4.0;     // of the raw value draw
  double lognormal_sigma = 1.6;
  double target_sum = 0.0;       // 0 = no rescaling
  double publicity_exponent = 0.7;  // publicity ∝ value^exponent
  double publicity_noise_sigma = 0.5;
  double min_value = 1.0;        // floor after scaling (a company has ≥1 employee)
  std::string key_prefix = "item";
  uint64_t seed = 1;
};

Population MakeHeavyTailPopulation(const HeavyTailPopulationConfig& config);

}  // namespace uuq

#endif  // UUQ_SIMULATION_POPULATION_H_
