// Crowd / multi-source sampling simulator (paper §2.2, §6.2, §6.3).
//
// Each worker (= data source) samples its quota WITHOUT replacement from the
// population with publicity-weighted probabilities. The generated stream is
// an arrival-ordered list of observations; experiments replay prefixes of it
// to trace estimator convergence.
//
// Streakers (§6.3) are supported two ways:
//  * sequential_full_dump — every source contributes ALL items one source
//    after another (Figure 7(a)),
//  * a single streaker injected at a given arrival position contributing
//    every population item consecutively (Figure 7(b)).
#ifndef UUQ_SIMULATION_CROWD_H_
#define UUQ_SIMULATION_CROWD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "integration/source.h"
#include "simulation/population.h"

namespace uuq {

/// How per-worker answer lists are merged into one arrival stream.
enum class ArrivalOrder {
  kRoundRobin,  ///< workers answer in parallel, interleaved
  kSequential,  ///< one worker completes before the next starts
};

struct CrowdConfig {
  int num_workers = 20;
  int answers_per_worker = 20;
  ArrivalOrder order = ArrivalOrder::kRoundRobin;
  /// Figure 7(a): every worker dumps the full population, sequentially.
  bool sequential_full_dump = false;
  /// Figure 7(b): inject one streaker at this arrival position (-1 = none);
  /// it contributes `streaker_items` items (0 = the whole population),
  /// sampled publicity-weighted without replacement, consecutively.
  int streaker_at = -1;
  int streaker_items = 0;
  uint64_t seed = 1;
};

class CrowdSimulator {
 public:
  CrowdSimulator(const Population* population, CrowdConfig config);

  /// Generates the full arrival stream. Deterministic in config.seed.
  std::vector<Observation> GenerateStream() const;

 private:
  std::vector<Observation> WorkerAnswers(int worker, int quota,
                                         Rng* rng) const;

  const Population* population_;
  CrowdConfig config_;
};

}  // namespace uuq

#endif  // UUQ_SIMULATION_CROWD_H_
