#include "simulation/experiment.h"

#include <cmath>
#include <limits>

#include "common/macros.h"
#include "integration/sample.h"

namespace uuq {

std::vector<int64_t> MakeCheckpoints(int64_t max_n, int64_t stride) {
  UUQ_CHECK(stride > 0);
  std::vector<int64_t> out;
  for (int64_t n = stride; n < max_n; n += stride) out.push_back(n);
  if (max_n > 0) out.push_back(max_n);
  return out;
}

std::vector<SeriesPoint> RunConvergence(
    const std::vector<Observation>& stream, const EstimatorSet& estimators,
    const std::vector<int64_t>& checkpoints, FusionPolicy fusion) {
  std::vector<SeriesPoint> series;
  if (checkpoints.empty()) return series;

  IntegratedSample sample(fusion);
  size_t next_checkpoint = 0;
  for (size_t i = 0; i < stream.size() && next_checkpoint < checkpoints.size();
       ++i) {
    sample.Add(stream[i].source_id, stream[i].entity_key, stream[i].value);
    const int64_t n = static_cast<int64_t>(i) + 1;
    if (n != checkpoints[next_checkpoint]) continue;
    ++next_checkpoint;

    SeriesPoint point;
    point.n = n;
    point.observed = sample.ObservedSum();
    point.c = sample.c();
    const SampleStats stats = SampleStats::FromSample(sample);
    point.coverage = stats.Coverage();
    for (const SumEstimator* estimator : estimators) {
      const Estimate est = estimator->EstimateImpact(sample);
      point.estimates[estimator->name()] = est.corrected_sum;
    }
    series.push_back(std::move(point));
  }
  return series;
}

std::vector<SeriesPoint> RunAveragedConvergence(
    const StreamFactory& factory, const EstimatorSet& estimators,
    const std::vector<int64_t>& checkpoints, int repetitions,
    uint64_t base_seed, FusionPolicy fusion) {
  UUQ_CHECK(repetitions > 0);

  struct Accumulator {
    double sum = 0.0;
    int finite = 0;
  };
  // Index: checkpoint -> estimator/observed accumulators.
  std::vector<SeriesPoint> shape;
  std::vector<std::map<std::string, Accumulator>> estimate_acc;
  std::vector<Accumulator> observed_acc, c_acc, coverage_acc;

  for (int rep = 0; rep < repetitions; ++rep) {
    const std::vector<Observation> stream =
        factory(base_seed + static_cast<uint64_t>(rep));
    const std::vector<SeriesPoint> series =
        RunConvergence(stream, estimators, checkpoints, fusion);
    if (series.size() > shape.size()) {
      shape.resize(series.size());
      estimate_acc.resize(series.size());
      observed_acc.resize(series.size());
      c_acc.resize(series.size());
      coverage_acc.resize(series.size());
    }
    for (size_t i = 0; i < series.size(); ++i) {
      shape[i].n = series[i].n;
      observed_acc[i].sum += series[i].observed;
      observed_acc[i].finite += 1;
      c_acc[i].sum += static_cast<double>(series[i].c);
      c_acc[i].finite += 1;
      coverage_acc[i].sum += series[i].coverage;
      coverage_acc[i].finite += 1;
      for (const auto& [name, value] : series[i].estimates) {
        Accumulator& acc = estimate_acc[i][name];
        if (std::isfinite(value)) {
          acc.sum += value;
          acc.finite += 1;
        }
      }
    }
  }

  std::vector<SeriesPoint> out;
  out.reserve(shape.size());
  for (size_t i = 0; i < shape.size(); ++i) {
    SeriesPoint point;
    point.n = shape[i].n;
    point.observed = observed_acc[i].finite > 0
                         ? observed_acc[i].sum / observed_acc[i].finite
                         : 0.0;
    point.c = c_acc[i].finite > 0
                  ? static_cast<int64_t>(
                        std::llround(c_acc[i].sum / c_acc[i].finite))
                  : 0;
    point.coverage = coverage_acc[i].finite > 0
                         ? coverage_acc[i].sum / coverage_acc[i].finite
                         : 0.0;
    for (const auto& [name, acc] : estimate_acc[i]) {
      point.estimates[name] =
          acc.finite > 0 ? acc.sum / acc.finite
                         : std::numeric_limits<double>::infinity();
    }
    out.push_back(std::move(point));
  }
  return out;
}

}  // namespace uuq
