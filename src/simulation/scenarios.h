// The paper's four real-world crowdsourcing workloads, rebuilt as calibrated
// simulations (see DESIGN.md §2 for the substitution rationale), plus the
// §6.2 synthetic workload.
#ifndef UUQ_SIMULATION_SCENARIOS_H_
#define UUQ_SIMULATION_SCENARIOS_H_

#include <string>
#include <vector>

#include "integration/source.h"
#include "simulation/crowd.h"
#include "simulation/population.h"

namespace uuq {

struct Scenario {
  std::string name;
  std::string value_column;  // "employees", "revenue", "gdp", "participants"
  Population population;
  std::vector<Observation> stream;  // full arrival-ordered answer stream
  double ground_truth_sum = 0.0;
};

namespace scenarios {

/// §6.1.1 / Figures 2, 4: SELECT SUM(employees) FROM us_tech_companies.
/// Heavy-tailed company sizes calibrated to the Pew ground truth of
/// 3,951,730 employees; publicity correlated with size; 50 workers × 10.
/// (Across 20 seeds, 17 reproduce the paper's estimator ordering; the
/// default picks a representative one.)
Scenario UsTechEmployment(uint64_t seed = 14);

/// §6.1.2 / Figure 5(a): SELECT SUM(revenue) FROM us_tech_companies.
/// Same shape with a heavier tail (revenue concentrates more than
/// headcount), so naive/freq overestimate harder.
Scenario UsTechRevenue(uint64_t seed = 11);

/// §6.1.3 / Figure 5(b): SELECT SUM(gdp) FROM us_states. Exactly N = 50
/// entities with real state-GDP magnitudes; a streaker reports almost
/// everything first.
Scenario UsGdp(uint64_t seed = 13);

/// §6.1.4 / Figure 5(c): SELECT SUM(participants) FROM proton_beam_studies.
/// No streakers, steady arrival of unique articles; the population total is
/// calibrated near the paper's converged bucket estimate (~95k).
Scenario ProtonBeam(uint64_t seed = 17);

/// §6.2: synthetic population + crowd in one call.
Scenario Synthetic(const SyntheticPopulationConfig& population_config,
                   const CrowdConfig& crowd_config,
                   const std::string& name = "synthetic");

}  // namespace scenarios

}  // namespace uuq

#endif  // UUQ_SIMULATION_SCENARIOS_H_
