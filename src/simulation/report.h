// ASCII/CSV series reporting for the benchmark harnesses: each bench prints
// the same rows/series the corresponding paper figure or table shows.
#ifndef UUQ_SIMULATION_REPORT_H_
#define UUQ_SIMULATION_REPORT_H_

#include <string>
#include <vector>

#include "simulation/experiment.h"

namespace uuq {

/// A rectangular numeric table with a title and column headers.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<double> row);

  const std::string& title() const { return title_; }
  const std::vector<std::string>& columns() const { return columns_; }
  size_t num_rows() const { return rows_.size(); }

  std::string ToAscii() const;
  std::string ToCsv() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

/// Flattens a convergence series into a table: n, observed, one column per
/// estimator (sorted by name), plus an optional ground-truth column.
SeriesTable SeriesToTable(const std::string& title,
                          const std::vector<SeriesPoint>& series,
                          double ground_truth = 0.0,
                          bool include_ground_truth = false);

}  // namespace uuq

#endif  // UUQ_SIMULATION_REPORT_H_
