#include "simulation/report.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"

namespace uuq {

SeriesTable::SeriesTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  UUQ_CHECK_MSG(!columns_.empty(), "a table needs at least one column");
}

void SeriesTable::AddRow(std::vector<double> row) {
  UUQ_CHECK_MSG(row.size() == columns_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string SeriesTable::ToAscii() const {
  std::vector<size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> cells(rows_.size());
  for (size_t j = 0; j < columns_.size(); ++j) widths[j] = columns_[j].size();
  for (size_t i = 0; i < rows_.size(); ++i) {
    cells[i].resize(columns_.size());
    for (size_t j = 0; j < columns_.size(); ++j) {
      cells[i][j] = FormatDouble(rows_[i][j], 2);
      widths[j] = std::max(widths[j], cells[i][j].size());
    }
  }
  std::string out = "== " + title_ + " ==\n";
  for (size_t j = 0; j < columns_.size(); ++j) {
    out += PadLeft(columns_[j], widths[j] + 2);
  }
  out += "\n";
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (size_t j = 0; j < columns_.size(); ++j) {
      out += PadLeft(cells[i][j], widths[j] + 2);
    }
    out += "\n";
  }
  return out;
}

std::string SeriesTable::ToCsv() const {
  std::string out;
  for (size_t j = 0; j < columns_.size(); ++j) {
    if (j > 0) out += ",";
    out += columns_[j];
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      if (j > 0) out += ",";
      out += FormatDouble(row[j], 6);
    }
    out += "\n";
  }
  return out;
}

SeriesTable SeriesToTable(const std::string& title,
                          const std::vector<SeriesPoint>& series,
                          double ground_truth, bool include_ground_truth) {
  std::vector<std::string> columns{"n", "observed"};
  if (!series.empty()) {
    for (const auto& [name, value] : series.front().estimates) {
      columns.push_back(name);
    }
  }
  if (include_ground_truth) columns.push_back("truth");

  SeriesTable table(title, columns);
  for (const SeriesPoint& point : series) {
    std::vector<double> row{static_cast<double>(point.n), point.observed};
    for (const auto& [name, value] : point.estimates) row.push_back(value);
    if (include_ground_truth) row.push_back(ground_truth);
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace uuq
