// Experiment harness: replay an observation stream, evaluate a set of
// estimators at sample-size checkpoints, optionally average over repeated
// trials (the paper repeats synthetic runs 50-1000 times).
#ifndef UUQ_SIMULATION_EXPERIMENT_H_
#define UUQ_SIMULATION_EXPERIMENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/estimate.h"
#include "integration/source.h"

namespace uuq {

/// One convergence-curve point: estimator name -> corrected SUM (φK + Δ̂).
struct SeriesPoint {
  int64_t n = 0;          ///< sample size at this checkpoint
  double observed = 0.0;  ///< φK
  int64_t c = 0;          ///< distinct entities
  double coverage = 0.0;  ///< Ĉ
  std::map<std::string, double> estimates;
};

/// Named estimator set. Ownership stays with the caller.
using EstimatorSet = std::vector<const SumEstimator*>;

/// Checkpoints helper: {stride, 2·stride, ...} up to max_n (inclusive of
/// max_n itself).
std::vector<int64_t> MakeCheckpoints(int64_t max_n, int64_t stride);

/// Replays `stream` into an IntegratedSample and evaluates every estimator
/// at each checkpoint. Checkpoints beyond the stream length are ignored.
std::vector<SeriesPoint> RunConvergence(
    const std::vector<Observation>& stream, const EstimatorSet& estimators,
    const std::vector<int64_t>& checkpoints,
    FusionPolicy fusion = FusionPolicy::kAverage);

/// Generates a fresh stream per repetition (seeded 'base_seed + rep') and
/// averages the corrected estimates point-wise across repetitions.
/// Non-finite estimates are excluded from the average; a point where every
/// repetition was non-finite reports +infinity (the paper's "missing data
/// points" for singleton-only static buckets).
using StreamFactory =
    std::function<std::vector<Observation>(uint64_t seed)>;

std::vector<SeriesPoint> RunAveragedConvergence(
    const StreamFactory& factory, const EstimatorSet& estimators,
    const std::vector<int64_t>& checkpoints, int repetitions,
    uint64_t base_seed, FusionPolicy fusion = FusionPolicy::kAverage);

}  // namespace uuq

#endif  // UUQ_SIMULATION_EXPERIMENT_H_
