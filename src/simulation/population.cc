#include "simulation/population.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/macros.h"
#include "stats/distributions.h"

namespace uuq {

Population::Population(std::vector<PopulationItem> items)
    : items_(std::move(items)) {
  std::vector<double> weights;
  weights.reserve(items_.size());
  for (const PopulationItem& item : items_) {
    UUQ_CHECK_MSG(item.publicity >= 0.0, "publicity must be non-negative");
    weights.push_back(item.publicity);
  }
  publicities_ = Normalize(std::move(weights));
  for (size_t i = 0; i < items_.size(); ++i) {
    items_[i].publicity = publicities_[i];
  }
}

double Population::TrueSum() const {
  double sum = 0.0;
  for (const PopulationItem& item : items_) sum += item.value;
  return sum;
}

double Population::TrueAvg() const {
  return items_.empty() ? 0.0 : TrueSum() / static_cast<double>(items_.size());
}

double Population::TrueMin() const {
  double out = std::numeric_limits<double>::infinity();
  for (const PopulationItem& item : items_) out = std::min(out, item.value);
  return out;
}

double Population::TrueMax() const {
  double out = -std::numeric_limits<double>::infinity();
  for (const PopulationItem& item : items_) out = std::max(out, item.value);
  return out;
}

double Population::PublicityValueCorrelation() const {
  const size_t n = items_.size();
  if (n < 2) return 0.0;
  // Spearman: correlation of ranks.
  auto ranks = [n](std::vector<double> xs) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
    std::vector<double> rank(n);
    for (size_t i = 0; i < n; ++i) rank[order[i]] = static_cast<double>(i);
    return rank;
  };
  std::vector<double> values, pubs;
  values.reserve(n);
  pubs.reserve(n);
  for (const PopulationItem& item : items_) {
    values.push_back(item.value);
    pubs.push_back(item.publicity);
  }
  const std::vector<double> rv = ranks(std::move(values));
  const std::vector<double> rp = ranks(std::move(pubs));
  const double mean = (static_cast<double>(n) - 1.0) / 2.0;
  double cov = 0.0, var_v = 0.0, var_p = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cov += (rv[i] - mean) * (rp[i] - mean);
    var_v += (rv[i] - mean) * (rv[i] - mean);
    var_p += (rp[i] - mean) * (rp[i] - mean);
  }
  if (var_v == 0.0 || var_p == 0.0) return 0.0;
  return cov / std::sqrt(var_v * var_p);
}

Population MakeSyntheticPopulation(const SyntheticPopulationConfig& config) {
  UUQ_CHECK(config.num_items > 0);
  UUQ_CHECK_MSG(config.rho >= 0.0 && config.rho <= 1.0, "rho must be in [0,1]");
  const int n = config.num_items;
  Rng rng(config.seed);

  // Publicity by rank: index 0 is most public.
  const std::vector<double> publicity = ExponentialPublicity(n, config.lambda);

  // Ascending values v_k = min + k·step.
  std::vector<double> values(n);
  for (int k = 0; k < n; ++k) {
    values[k] = config.value_min + config.value_step * k;
  }

  // Assign values to publicity ranks. ρ = 1: most public item gets the
  // largest value (descending by rank). ρ = 0: random assignment. In
  // between: blend the deterministic rank with uniform noise and sort.
  std::vector<int> value_index(n);
  std::iota(value_index.begin(), value_index.end(), 0);
  if (config.rho >= 1.0) {
    // rank 0 (most public) -> largest value index n-1.
    for (int i = 0; i < n; ++i) value_index[i] = n - 1 - i;
  } else if (config.rho <= 0.0) {
    rng.Shuffle(&value_index);
  } else {
    std::vector<std::pair<double, int>> scored(n);
    for (int i = 0; i < n; ++i) {
      const double deterministic =
          static_cast<double>(i) / std::max(n - 1, 1);
      scored[i] = {config.rho * deterministic +
                       (1.0 - config.rho) * rng.NextDouble(),
                   n - 1 - i};
    }
    std::sort(scored.begin(), scored.end());
    for (int i = 0; i < n; ++i) value_index[i] = scored[i].second;
  }

  std::vector<PopulationItem> items(n);
  for (int i = 0; i < n; ++i) {
    items[i].key = "item-" + std::to_string(i);
    items[i].value = values[value_index[i]];
    items[i].publicity = publicity[i];
  }
  return Population(std::move(items));
}

Population MakeHeavyTailPopulation(const HeavyTailPopulationConfig& config) {
  UUQ_CHECK(config.num_items > 0);
  Rng rng(config.seed);
  const int n = config.num_items;

  std::vector<double> values(n);
  double raw_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    values[i] = std::exp(config.lognormal_mu +
                         config.lognormal_sigma * rng.NextGaussian());
    raw_sum += values[i];
  }
  if (config.target_sum > 0.0 && raw_sum > 0.0) {
    const double scale = config.target_sum / raw_sum;
    for (double& v : values) v = std::max(v * scale, config.min_value);
  }

  std::vector<PopulationItem> items(n);
  for (int i = 0; i < n; ++i) {
    items[i].key = config.key_prefix + "-" + std::to_string(i);
    items[i].value = std::round(values[i]);
    if (items[i].value < config.min_value) items[i].value = config.min_value;
    const double noise =
        std::exp(config.publicity_noise_sigma * rng.NextGaussian());
    items[i].publicity =
        std::pow(items[i].value, config.publicity_exponent) * noise;
  }
  return Population(std::move(items));
}

}  // namespace uuq
