#include "simulation/scenarios.h"

#include <cmath>

#include "common/macros.h"

namespace uuq {
namespace scenarios {
namespace {

/// 2015-era US state GDPs in billions (magnitudes matter, not exactness).
struct StateGdp {
  const char* state;
  double gdp;
};
constexpr StateGdp kStateGdps[] = {
    {"California", 2481}, {"Texas", 1648},         {"New York", 1455},
    {"Florida", 888},     {"Illinois", 776},       {"Pennsylvania", 719},
    {"Ohio", 608},        {"New Jersey", 575},     {"North Carolina", 510},
    {"Georgia", 498},     {"Virginia", 481},       {"Massachusetts", 477},
    {"Michigan", 469},    {"Washington", 445},     {"Maryland", 365},
    {"Indiana", 336},     {"Minnesota", 328},      {"Colorado", 318},
    {"Tennessee", 317},   {"Missouri", 293},       {"Wisconsin", 292},
    {"Arizona", 290},     {"Connecticut", 260},    {"Louisiana", 252},
    {"Oregon", 228},      {"Alabama", 204},        {"South Carolina", 198},
    {"Kentucky", 194},    {"Oklahoma", 181},       {"Iowa", 178},
    {"Kansas", 150},      {"Utah", 146},           {"Nevada", 140},
    {"Arkansas", 124},    {"Nebraska", 113},       {"Mississippi", 107},
    {"New Mexico", 92},   {"Hawaii", 80},          {"West Virginia", 74},
    {"New Hampshire", 72},{"Delaware", 68},        {"Idaho", 66},
    {"Maine", 57},        {"Rhode Island", 57},    {"North Dakota", 55},
    {"Alaska", 53},       {"South Dakota", 48},    {"Montana", 46},
    {"Wyoming", 40},      {"Vermont", 30},
};

Scenario BuildCrowdScenario(std::string name, std::string value_column,
                            Population population, const CrowdConfig& crowd) {
  Scenario scenario;
  scenario.name = std::move(name);
  scenario.value_column = std::move(value_column);
  scenario.ground_truth_sum = population.TrueSum();
  scenario.population = std::move(population);
  CrowdSimulator simulator(&scenario.population, crowd);
  scenario.stream = simulator.GenerateStream();
  return scenario;
}

}  // namespace

Scenario UsTechEmployment(uint64_t seed) {
  // Calibrated so that at 500 answers: observed ≈ 0.70·truth, Ĉ ≈ 0.64,
  // naive ≈ 1.9·truth, freq ≈ 1.26·truth, bucket ≈ 1.00·truth — the
  // Figure 2/4 shape.
  HeavyTailPopulationConfig pop;
  pop.num_items = 1200;
  pop.lognormal_mu = 4.0;
  pop.lognormal_sigma = 1.7;
  pop.target_sum = 3951730.0;  // Pew Research ground truth [39]
  pop.publicity_exponent = 0.9;
  pop.publicity_noise_sigma = 0.5;
  pop.key_prefix = "company";
  pop.seed = seed;

  CrowdConfig crowd;
  crowd.num_workers = 50;
  crowd.answers_per_worker = 10;
  crowd.order = ArrivalOrder::kRoundRobin;
  crowd.seed = seed * 1000003ull + 1;

  return BuildCrowdScenario("us-tech-employment", "employees",
                            MakeHeavyTailPopulation(pop), crowd);
}

Scenario UsTechRevenue(uint64_t seed) {
  HeavyTailPopulationConfig pop;
  pop.num_items = 2000;
  pop.lognormal_mu = 2.5;      // $M; most tech companies are small
  pop.lognormal_sigma = 2.2;   // revenue tail is heavier than headcount
  pop.target_sum = 750000.0;   // ≈ $750B tech-sector revenue
  pop.publicity_exponent = 0.75;
  pop.publicity_noise_sigma = 0.4;
  pop.key_prefix = "company";
  pop.seed = seed;

  CrowdConfig crowd;
  crowd.num_workers = 50;
  crowd.answers_per_worker = 10;
  crowd.order = ArrivalOrder::kRoundRobin;
  crowd.seed = seed * 1000003ull + 1;

  return BuildCrowdScenario("us-tech-revenue", "revenue",
                            MakeHeavyTailPopulation(pop), crowd);
}

Scenario UsGdp(uint64_t seed) {
  std::vector<PopulationItem> items;
  items.reserve(std::size(kStateGdps));
  for (const StateGdp& s : kStateGdps) {
    PopulationItem item;
    item.key = s.state;
    item.value = s.gdp;
    // Bigger states are better known, mildly.
    item.publicity = std::sqrt(s.gdp);
    items.push_back(std::move(item));
  }
  Population population(std::move(items));

  // The paper's GDP experiment suffered from a streaker: one worker reported
  // almost all answers at the start. Model: 10 regular workers of 5 answers
  // each, with a 45-answer streaker injected at position 0.
  CrowdConfig crowd;
  crowd.num_workers = 10;
  crowd.answers_per_worker = 5;
  crowd.order = ArrivalOrder::kRoundRobin;
  crowd.streaker_at = 0;
  crowd.streaker_items = 45;
  crowd.seed = seed * 1000003ull + 1;

  return BuildCrowdScenario("us-gdp", "gdp", std::move(population), crowd);
}

Scenario ProtonBeam(uint64_t seed) {
  HeavyTailPopulationConfig pop;
  pop.num_items = 450;        // article/study population
  pop.lognormal_mu = 4.6;     // participants per study, median ≈ 100
  pop.lognormal_sigma = 1.1;
  pop.target_sum = 97000.0;   // near the paper's converged bucket estimate
  pop.publicity_exponent = 0.15;  // which article you screen barely depends
  pop.publicity_noise_sigma = 0.6;  // on study size: weak correlation
  pop.key_prefix = "study";
  pop.seed = seed;

  CrowdConfig crowd;
  crowd.num_workers = 48;
  crowd.answers_per_worker = 16;
  crowd.order = ArrivalOrder::kRoundRobin;
  crowd.seed = seed * 1000003ull + 1;

  return BuildCrowdScenario("proton-beam", "participants",
                            MakeHeavyTailPopulation(pop), crowd);
}

Scenario Synthetic(const SyntheticPopulationConfig& population_config,
                   const CrowdConfig& crowd_config, const std::string& name) {
  return BuildCrowdScenario(name, "value",
                            MakeSyntheticPopulation(population_config),
                            crowd_config);
}

}  // namespace scenarios
}  // namespace uuq
