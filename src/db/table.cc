#include "db/table.h"

#include "common/macros.h"
#include "common/strings.h"

namespace uuq {

Status Table::Append(Row row) {
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    const ValueType expected = schema_.field(i).type;
    const ValueType got = row[i].type();
    const bool numeric_ok =
        (expected == ValueType::kDouble && got == ValueType::kInt64);
    if (got != expected && !numeric_ok) {
      return Status::InvalidArgument(
          "column '" + schema_.field(i).name + "' expects " +
          ValueTypeName(expected) + " but got " + ValueTypeName(got));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::vector<Value> Table::Column(size_t field_index) const {
  UUQ_CHECK(field_index < schema_.num_fields());
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) out.push_back(r[field_index]);
  return out;
}

Result<std::vector<double>> Table::NumericColumn(
    const std::string& name) const {
  auto idx = schema_.IndexOf(name);
  if (!idx.ok()) return idx.status();
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) {
    const Value& v = r[idx.value()];
    if (v.is_null()) continue;
    auto d = v.ToDouble();
    if (!d.ok()) return d.status();
    out.push_back(d.value());
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  // Compute column widths over the rendered subset.
  const size_t shown = std::min(max_rows, rows_.size());
  std::vector<size_t> widths(schema_.num_fields());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    widths[i] = schema_.field(i).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.num_fields());
    for (size_t i = 0; i < schema_.num_fields(); ++i) {
      cells[r][i] = rows_[r][i].ToString();
      widths[i] = std::max(widths[i], cells[r][i].size());
    }
  }
  std::string out = name_.empty() ? "(table)" : name_;
  out += " " + schema_.ToString() + ", " + std::to_string(rows_.size()) +
         " rows\n";
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    out += PadRight(schema_.field(i).name, widths[i] + 2);
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t i = 0; i < schema_.num_fields(); ++i) {
      out += PadRight(cells[r][i], widths[i] + 2);
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace uuq
