// A small SQL parser for the paper's query class:
//
//   SELECT <AGG>(<attr>|*) FROM <table> [WHERE <predicate>]
//
// with AGG in {SUM, COUNT, AVG, MIN, MAX} and predicates over comparisons of
// a column against a numeric/string/bool literal composed with AND/OR/NOT
// and parentheses. Identifiers are [A-Za-z_][A-Za-z0-9_]*; string literals
// use single quotes with '' as the escape; keywords are case-insensitive.
#ifndef UUQ_DB_SQL_PARSER_H_
#define UUQ_DB_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "db/query.h"

namespace uuq {

/// Parses an aggregate query; ParseError with position info on bad input.
Result<AggregateQuery> ParseQuery(const std::string& sql);

}  // namespace uuq

#endif  // UUQ_DB_SQL_PARSER_H_
