#include "db/csv.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace uuq {

Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text, std::vector<size_t>* row_lines) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // row has at least one field begun

  size_t i = 0;
  const size_t n = text.size();
  size_t line = 1;       // 1-based line under the cursor
  size_t row_line = 1;   // line the current row started on
  size_t quote_line = 1;  // line the open quoted field started on
  if (row_lines != nullptr) row_lines->clear();
  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    if (row_lines != nullptr) row_lines->push_back(row_line);
    row.clear();
    field_started = false;
  };

  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        if (c == '\n') ++line;  // embedded newline: row keeps its start line
        field += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::ParseError(
              "line " + std::to_string(line) +
              ": unexpected quote inside unquoted field (offset " +
              std::to_string(i) + ")");
        }
        in_quotes = true;
        quote_line = line;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        field_started = true;
        ++i;
        break;
      case '\r':
        // Swallow the CR of a CRLF; bare CR also ends the line.
        if (i + 1 < n && text[i + 1] == '\n') ++i;
        [[fallthrough]];
      case '\n':
        end_row();
        ++i;
        ++line;
        row_line = line;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::ParseError(
        "unterminated quoted field starting on line " +
        std::to_string(quote_line) + " (truncated file?)");
  }
  // Flush a final row without trailing newline.
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

std::string CsvEscapeField(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string WriteTableCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t j = 0; j < schema.num_fields(); ++j) {
    if (j > 0) out += ',';
    out += CsvEscapeField(schema.field(j).name);
  }
  out += '\n';
  for (const Row& row : table.rows()) {
    for (size_t j = 0; j < row.size(); ++j) {
      if (j > 0) out += ',';
      if (!row[j].is_null()) out += CsvEscapeField(row[j].ToString());
    }
    out += '\n';
  }
  return out;
}

namespace {

bool ParsesAsInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParsesAsDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Result<Table> ReadTableCsv(const std::string& table_name,
                           std::string_view text) {
  std::vector<size_t> row_lines;
  auto parsed = ParseCsv(text, &row_lines);
  if (!parsed.ok()) return parsed.status();
  const auto& rows = parsed.value();
  if (rows.empty()) {
    return Status::InvalidArgument("CSV needs a header row");
  }
  const std::vector<std::string>& header = rows.front();
  const size_t num_columns = header.size();
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != num_columns) {
      return Status::ParseError(
          "line " + std::to_string(row_lines[r]) + ": row has " +
          std::to_string(rows[r].size()) + " fields, expected " +
          std::to_string(num_columns) + " (truncated row?)");
    }
  }

  // Infer column types over the data rows.
  std::vector<ValueType> types(num_columns, ValueType::kInt64);
  for (size_t j = 0; j < num_columns; ++j) {
    bool any_value = false;
    for (size_t r = 1; r < rows.size(); ++r) {
      const std::string& cell = rows[r][j];
      if (cell.empty()) continue;
      any_value = true;
      int64_t iv;
      double dv;
      if (types[j] == ValueType::kInt64 && !ParsesAsInt(cell, &iv)) {
        types[j] = ValueType::kDouble;
      }
      if (types[j] == ValueType::kDouble && !ParsesAsDouble(cell, &dv)) {
        types[j] = ValueType::kString;
        break;
      }
      if (types[j] == ValueType::kString) break;
    }
    if (!any_value) types[j] = ValueType::kString;  // all-NULL column
  }

  std::vector<Field> fields;
  fields.reserve(num_columns);
  for (size_t j = 0; j < num_columns; ++j) {
    if (header[j].empty()) {
      return Status::InvalidArgument("empty column name in CSV header");
    }
    fields.push_back({header[j], types[j]});
  }
  Table table(table_name, Schema(std::move(fields)));

  for (size_t r = 1; r < rows.size(); ++r) {
    Row row;
    row.reserve(num_columns);
    for (size_t j = 0; j < num_columns; ++j) {
      const std::string& cell = rows[r][j];
      if (cell.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[j]) {
        case ValueType::kInt64: {
          int64_t v = 0;
          ParsesAsInt(cell, &v);
          row.push_back(Value(v));
          break;
        }
        case ValueType::kDouble: {
          double v = 0;
          ParsesAsDouble(cell, &v);
          row.push_back(Value(v));
          break;
        }
        default:
          row.push_back(Value(cell));
          break;
      }
    }
    if (Status s = table.Append(std::move(row)); !s.ok()) return s;
  }
  return table;
}

Result<std::vector<Observation>> ReadObservationsCsv(std::string_view text) {
  std::vector<size_t> row_lines;
  auto parsed = ParseCsv(text, &row_lines);
  if (!parsed.ok()) return parsed.status();
  const auto& rows = parsed.value();
  if (rows.empty()) {
    return Status::InvalidArgument("CSV needs a header row");
  }
  const auto& header = rows.front();
  int source_col = -1, entity_col = -1, value_col = -1;
  for (size_t j = 0; j < header.size(); ++j) {
    if (EqualsIgnoreCase(header[j], "source")) source_col = static_cast<int>(j);
    if (EqualsIgnoreCase(header[j], "entity")) entity_col = static_cast<int>(j);
    if (EqualsIgnoreCase(header[j], "value")) value_col = static_cast<int>(j);
  }
  if (source_col < 0 || entity_col < 0 || value_col < 0) {
    return Status::InvalidArgument(
        "observation CSV needs 'source', 'entity' and 'value' columns");
  }
  std::vector<Observation> out;
  out.reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    const std::string line = std::to_string(row_lines[r]);
    const size_t needed = static_cast<size_t>(
        std::max(source_col, std::max(entity_col, value_col)));
    if (row.size() <= needed) {
      return Status::ParseError(
          "line " + line + ": row has " + std::to_string(row.size()) +
          " fields but the value/source/entity columns need at least " +
          std::to_string(needed + 1) + " (truncated row?)");
    }
    double value = 0.0;
    if (!ParsesAsDouble(row[value_col], &value)) {
      return Status::ParseError("line " + line + ": value '" +
                                row[value_col] + "' is not numeric");
    }
    // inf/nan would poison φK, every f-statistic ratio, and the bucket
    // index's value sort — reject at the door instead.
    if (!std::isfinite(value)) {
      return Status::ParseError("line " + line + ": value '" +
                                row[value_col] +
                                "' is not finite; observation values must "
                                "be finite numbers");
    }
    if (row[source_col].empty()) {
      return Status::ParseError("line " + line + ": empty source id");
    }
    if (row[entity_col].empty()) {
      return Status::ParseError("line " + line + ": empty entity key");
    }
    out.push_back({row[source_col], row[entity_col], value});
  }
  return out;
}

std::string WriteObservationsCsv(const std::vector<Observation>& stream) {
  std::string out = "source,entity,value\n";
  for (const Observation& obs : stream) {
    out += CsvEscapeField(obs.source_id);
    out += ',';
    out += CsvEscapeField(obs.entity_key);
    out += ',';
    out += FormatDouble(obs.value);
    out += '\n';
  }
  return out;
}

}  // namespace uuq
