// Incremental aggregate accumulators: SUM, COUNT, AVG, MIN, MAX.
//
// Aggregation is incremental so the experiment harness can replay an
// observation stream and read the observed aggregate φK after every arrival
// without rescanning.
#ifndef UUQ_DB_AGGREGATE_H_
#define UUQ_DB_AGGREGATE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "db/value.h"

namespace uuq {

enum class AggregateKind { kSum, kCount, kAvg, kMin, kMax };

const char* AggregateKindName(AggregateKind kind);

/// Parses "SUM", "count", "Avg"...; InvalidArgument otherwise.
Result<AggregateKind> ParseAggregateKind(const std::string& name);

/// Streaming accumulator. Null inputs are ignored (SQL semantics); COUNT
/// counts non-null inputs.
class Aggregator {
 public:
  explicit Aggregator(AggregateKind kind);

  AggregateKind kind() const { return kind_; }

  /// Folds one value in. Non-numeric values are errors for SUM/AVG; MIN/MAX
  /// accept any comparable value; COUNT accepts everything.
  Status Update(const Value& v);

  /// Removes a previously-added value (SUM/COUNT/AVG only — MIN/MAX would
  /// need a full multiset). Used when value fusion revises an entity value.
  Status Retract(const Value& v);

  /// Current aggregate; NULL when no rows matched (except COUNT = 0).
  Value Current() const;

  /// Number of non-null inputs folded so far.
  int64_t count() const { return count_; }

  void Reset();

 private:
  AggregateKind kind_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  Value min_;
  Value max_;
};

}  // namespace uuq

#endif  // UUQ_DB_AGGREGATE_H_
