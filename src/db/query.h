// Aggregate query representation and executor.
//
// Queries have the paper's shape: SELECT AGG(attr) FROM table [WHERE pred].
// Execution scans the table once, applies the predicate, folds the attribute
// into an Aggregator, and also reports the matched-value vector so the
// estimators can attach an unknown-unknowns correction.
#ifndef UUQ_DB_QUERY_H_
#define UUQ_DB_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/aggregate.h"
#include "db/predicate.h"
#include "db/table.h"

namespace uuq {

/// A parsed/constructed aggregate query.
struct AggregateQuery {
  AggregateKind aggregate = AggregateKind::kSum;
  std::string attribute;     // "*" only valid for COUNT
  std::string table_name;
  PredicatePtr predicate;    // never null; MakeTrue() when absent
  std::string group_by;      // empty = ungrouped

  std::string ToString() const;
};

/// The observed answer φK plus the matched rows' attribute values (used by
/// estimators and for diagnostics).
struct QueryResult {
  Value value;                          // NULL when zero rows matched (not COUNT)
  int64_t rows_matched = 0;
  std::vector<double> matched_values;   // numeric attr values (empty for COUNT(*))

  /// Numeric convenience accessor; NaN when value is NULL.
  double AsDoubleOrNan() const;
};

/// Executes `query` over `table`. The table name in the query is not checked
/// here (the Catalog resolves names); schema/type errors are reported.
/// Fails with InvalidArgument when the query has a GROUP BY clause — use
/// ExecuteGroupedAggregateQuery for those.
Result<QueryResult> ExecuteAggregateQuery(const AggregateQuery& query,
                                          const Table& table);

/// One aggregate per distinct value of the GROUP BY column (rows where the
/// grouping cell is NULL form their own group keyed by Value::Null()).
struct GroupedQueryResult {
  std::vector<std::pair<Value, QueryResult>> groups;  // sorted by group key
};

/// Executes a grouped aggregate query; `query.group_by` must name a column.
Result<GroupedQueryResult> ExecuteGroupedAggregateQuery(
    const AggregateQuery& query, const Table& table);

}  // namespace uuq

#endif  // UUQ_DB_QUERY_H_
