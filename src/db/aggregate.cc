#include "db/aggregate.h"

#include "common/macros.h"
#include "common/strings.h"

namespace uuq {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kAvg:
      return "AVG";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
  }
  return "?";
}

Result<AggregateKind> ParseAggregateKind(const std::string& name) {
  if (EqualsIgnoreCase(name, "sum")) return AggregateKind::kSum;
  if (EqualsIgnoreCase(name, "count")) return AggregateKind::kCount;
  if (EqualsIgnoreCase(name, "avg")) return AggregateKind::kAvg;
  if (EqualsIgnoreCase(name, "min")) return AggregateKind::kMin;
  if (EqualsIgnoreCase(name, "max")) return AggregateKind::kMax;
  return Status::InvalidArgument("unknown aggregate function '" + name + "'");
}

Aggregator::Aggregator(AggregateKind kind) : kind_(kind) {}

Status Aggregator::Update(const Value& v) {
  if (v.is_null()) return Status::OK();
  switch (kind_) {
    case AggregateKind::kCount:
      ++count_;
      return Status::OK();
    case AggregateKind::kSum:
    case AggregateKind::kAvg: {
      auto d = v.ToDouble();
      if (!d.ok()) return d.status();
      sum_ += d.value();
      ++count_;
      return Status::OK();
    }
    case AggregateKind::kMin:
      if (min_.is_null() || v < min_) min_ = v;
      ++count_;
      return Status::OK();
    case AggregateKind::kMax:
      if (max_.is_null() || v > max_) max_ = v;
      ++count_;
      return Status::OK();
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

Status Aggregator::Retract(const Value& v) {
  if (v.is_null()) return Status::OK();
  switch (kind_) {
    case AggregateKind::kCount:
      if (count_ == 0) {
        return Status::FailedPrecondition("retract from empty COUNT");
      }
      --count_;
      return Status::OK();
    case AggregateKind::kSum:
    case AggregateKind::kAvg: {
      if (count_ == 0) {
        return Status::FailedPrecondition("retract from empty aggregate");
      }
      auto d = v.ToDouble();
      if (!d.ok()) return d.status();
      sum_ -= d.value();
      --count_;
      return Status::OK();
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return Status::Unimplemented(
          "MIN/MAX retraction requires a multiset; rebuild instead");
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

Value Aggregator::Current() const {
  switch (kind_) {
    case AggregateKind::kCount:
      return Value(count_);
    case AggregateKind::kSum:
      return count_ == 0 ? Value::Null() : Value(sum_);
    case AggregateKind::kAvg:
      return count_ == 0 ? Value::Null()
                         : Value(sum_ / static_cast<double>(count_));
    case AggregateKind::kMin:
      return min_;
    case AggregateKind::kMax:
      return max_;
  }
  return Value::Null();
}

void Aggregator::Reset() {
  count_ = 0;
  sum_ = 0.0;
  min_ = Value::Null();
  max_ = Value::Null();
}

}  // namespace uuq
