#include "db/catalog.h"

#include "common/strings.h"
#include "db/sql_parser.h"

namespace uuq {

void Catalog::Register(Table table) {
  const std::string key = AsciiToLower(table.name());
  tables_.insert_or_assign(key, std::move(table));
}

Result<const Table*> Catalog::Lookup(const std::string& name) const {
  auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table.name());
  return names;
}

Result<QueryResult> Catalog::ExecuteSql(const std::string& sql) const {
  auto query = ParseQuery(sql);
  if (!query.ok()) return query.status();
  return Execute(query.value());
}

Result<QueryResult> Catalog::Execute(const AggregateQuery& query) const {
  auto table = Lookup(query.table_name);
  if (!table.ok()) return table.status();
  return ExecuteAggregateQuery(query, *table.value());
}

}  // namespace uuq
