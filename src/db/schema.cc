#include "db/schema.h"

#include "common/macros.h"
#include "common/strings.h"

namespace uuq {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    UUQ_CHECK_MSG(!fields_[i].name.empty(), "field names must be non-empty");
    for (size_t j = i + 1; j < fields_.size(); ++j) {
      UUQ_CHECK_MSG(!EqualsIgnoreCase(fields_[i].name, fields_[j].name),
                    "duplicate field name");
    }
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return Status::NotFound("no column named '" + name + "' in schema " +
                          ToString());
}

bool Schema::HasField(const std::string& name) const {
  return IndexOf(name).ok();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace uuq
