// Predicate expression trees for the WHERE clause of aggregate queries.
//
// Grammar (built by the SQL parser or programmatically):
//   expr    := or
//   or      := and (OR and)*
//   and     := unary (AND unary)*
//   unary   := NOT unary | comparison | '(' expr ')'
//   compare := column op literal         op ∈ {=, !=, <>, <, <=, >, >=}
// Comparisons against NULL rows evaluate to false (SQL-ish three-valued
// logic collapsed to two values, which is all the estimators need).
#ifndef UUQ_DB_PREDICATE_H_
#define UUQ_DB_PREDICATE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "db/schema.h"
#include "db/table.h"
#include "db/value.h"

namespace uuq {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSymbol(CompareOp op);

/// Abstract predicate node.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Evaluates against a row of the given schema.
  virtual Result<bool> Eval(const Row& row, const Schema& schema) const = 0;

  /// Checks all referenced columns exist.
  virtual Status Validate(const Schema& schema) const = 0;

  /// SQL-ish rendering, fully parenthesized.
  virtual std::string ToString() const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// column <op> literal.
PredicatePtr MakeComparison(std::string column, CompareOp op, Value literal);
/// lhs AND rhs.
PredicatePtr MakeAnd(PredicatePtr lhs, PredicatePtr rhs);
/// lhs OR rhs.
PredicatePtr MakeOr(PredicatePtr lhs, PredicatePtr rhs);
/// NOT inner.
PredicatePtr MakeNot(PredicatePtr inner);
/// Always true (the implicit predicate of a query with no WHERE clause).
PredicatePtr MakeTrue();

}  // namespace uuq

#endif  // UUQ_DB_PREDICATE_H_
