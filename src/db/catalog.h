// Named-table catalog: resolves the FROM clause of parsed queries.
#ifndef UUQ_DB_CATALOG_H_
#define UUQ_DB_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/query.h"
#include "db/table.h"

namespace uuq {

class Catalog {
 public:
  /// Registers (or replaces) a table under its own name. Names are
  /// case-insensitive.
  void Register(Table table);

  /// Resolves a table; NotFound when absent.
  Result<const Table*> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const { return Lookup(name).ok(); }

  std::vector<std::string> TableNames() const;

  /// Parses and executes SQL text end-to-end against the catalog.
  Result<QueryResult> ExecuteSql(const std::string& sql) const;

  /// Executes an already-parsed query against the catalog.
  Result<QueryResult> Execute(const AggregateQuery& query) const;

 private:
  std::map<std::string, Table> tables_;  // key: lower-cased name
};

}  // namespace uuq

#endif  // UUQ_DB_CATALOG_H_
