// Relation schemas for the mini database substrate.
#ifndef UUQ_DB_SCHEMA_H_
#define UUQ_DB_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/value.h"

namespace uuq {

/// A named, typed column.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// An ordered list of fields with by-name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Case-insensitive column lookup; NotFound when absent.
  Result<size_t> IndexOf(const std::string& name) const;

  bool HasField(const std::string& name) const;

  /// "name:TYPE, name:TYPE" — used in error messages and tests.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Field> fields_;
};

}  // namespace uuq

#endif  // UUQ_DB_SCHEMA_H_
