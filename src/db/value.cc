#include "db/value.h"

#include <cmath>
#include <functional>

#include "common/macros.h"
#include "common/strings.h"

namespace uuq {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt64;
    case 3:
      return ValueType::kDouble;
    case 4:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

bool Value::AsBool() const {
  UUQ_CHECK_MSG(type() == ValueType::kBool, "Value is not BOOL");
  return std::get<bool>(data_);
}

int64_t Value::AsInt64() const {
  UUQ_CHECK_MSG(type() == ValueType::kInt64, "Value is not INT64");
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  UUQ_CHECK_MSG(type() == ValueType::kDouble, "Value is not DOUBLE");
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  UUQ_CHECK_MSG(type() == ValueType::kString, "Value is not STRING");
  return std::get<std::string>(data_);
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return std::get<double>(data_);
    default:
      return Status::InvalidArgument(std::string("cannot coerce ") +
                                     ValueTypeName(type()) + " to DOUBLE");
  }
}

namespace {

// Cross-type rank: NULL < BOOL < numeric < STRING.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const int rank_a = TypeRank(type());
  const int rank_b = TypeRank(other.type());
  if (rank_a != rank_b) return rank_a < rank_b ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      const bool a = AsBool(), b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kInt64:
    case ValueType::kDouble:
      return CompareDoubles(ToDouble().value(), other.ToDouble().value());
    case ValueType::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return FormatDouble(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "NULL";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kBool:
      return std::hash<bool>{}(AsBool());
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Hash numerics through double so 3 and 3.0 collide (they compare
      // equal, so they must hash equal).
      double d = ToDouble().value();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

}  // namespace uuq
