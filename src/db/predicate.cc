#include "db/predicate.h"

#include "common/macros.h"

namespace uuq {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

class ComparisonPredicate final : public Predicate {
 public:
  ComparisonPredicate(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  Result<bool> Eval(const Row& row, const Schema& schema) const override {
    auto idx = schema.IndexOf(column_);
    if (!idx.ok()) return idx.status();
    const Value& cell = row[idx.value()];
    if (cell.is_null() || literal_.is_null()) return false;
    const int cmp = cell.Compare(literal_);
    switch (op_) {
      case CompareOp::kEq:
        return cmp == 0;
      case CompareOp::kNe:
        return cmp != 0;
      case CompareOp::kLt:
        return cmp < 0;
      case CompareOp::kLe:
        return cmp <= 0;
      case CompareOp::kGt:
        return cmp > 0;
      case CompareOp::kGe:
        return cmp >= 0;
    }
    return Status::InvalidArgument("unknown comparison op");
  }

  Status Validate(const Schema& schema) const override {
    auto idx = schema.IndexOf(column_);
    return idx.ok() ? Status::OK() : idx.status();
  }

  std::string ToString() const override {
    std::string lit = literal_.type() == ValueType::kString
                          ? "'" + literal_.ToString() + "'"
                          : literal_.ToString();
    return "(" + column_ + " " + CompareOpSymbol(op_) + " " + lit + ")";
  }

 private:
  std::string column_;
  CompareOp op_;
  Value literal_;
};

class BinaryLogicalPredicate final : public Predicate {
 public:
  BinaryLogicalPredicate(bool is_and, PredicatePtr lhs, PredicatePtr rhs)
      : is_and_(is_and), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
    UUQ_CHECK(lhs_ != nullptr && rhs_ != nullptr);
  }

  Result<bool> Eval(const Row& row, const Schema& schema) const override {
    auto lhs = lhs_->Eval(row, schema);
    if (!lhs.ok()) return lhs;
    if (is_and_ && !lhs.value()) return false;   // short circuit
    if (!is_and_ && lhs.value()) return true;
    return rhs_->Eval(row, schema);
  }

  Status Validate(const Schema& schema) const override {
    Status s = lhs_->Validate(schema);
    if (!s.ok()) return s;
    return rhs_->Validate(schema);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + (is_and_ ? " AND " : " OR ") +
           rhs_->ToString() + ")";
  }

 private:
  bool is_and_;
  PredicatePtr lhs_;
  PredicatePtr rhs_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr inner) : inner_(std::move(inner)) {
    UUQ_CHECK(inner_ != nullptr);
  }

  Result<bool> Eval(const Row& row, const Schema& schema) const override {
    auto inner = inner_->Eval(row, schema);
    if (!inner.ok()) return inner;
    return !inner.value();
  }

  Status Validate(const Schema& schema) const override {
    return inner_->Validate(schema);
  }

  std::string ToString() const override {
    return "(NOT " + inner_->ToString() + ")";
  }

 private:
  PredicatePtr inner_;
};

class TruePredicate final : public Predicate {
 public:
  Result<bool> Eval(const Row& row, const Schema& schema) const override {
    UUQ_UNUSED(row);
    UUQ_UNUSED(schema);
    return true;
  }
  Status Validate(const Schema& schema) const override {
    UUQ_UNUSED(schema);
    return Status::OK();
  }
  std::string ToString() const override { return "TRUE"; }
};

}  // namespace

PredicatePtr MakeComparison(std::string column, CompareOp op, Value literal) {
  return std::make_shared<ComparisonPredicate>(std::move(column), op,
                                               std::move(literal));
}

PredicatePtr MakeAnd(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_shared<BinaryLogicalPredicate>(true, std::move(lhs),
                                                  std::move(rhs));
}

PredicatePtr MakeOr(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_shared<BinaryLogicalPredicate>(false, std::move(lhs),
                                                  std::move(rhs));
}

PredicatePtr MakeNot(PredicatePtr inner) {
  return std::make_shared<NotPredicate>(std::move(inner));
}

PredicatePtr MakeTrue() { return std::make_shared<TruePredicate>(); }

}  // namespace uuq
