// CSV import/export (RFC-4180 style: quoted fields, embedded commas/quotes/
// newlines, CRLF tolerance).
//
// Two layers:
//  * generic: parse/serialize a Table with header row + per-column type
//    inference (INT64 -> DOUBLE -> STRING; empty cells are NULL),
//  * integration: load observation streams "source,entity,value" straight
//    into the data-integration pipeline.
#ifndef UUQ_DB_CSV_H_
#define UUQ_DB_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "db/table.h"
#include "integration/source.h"

namespace uuq {

/// Splits CSV text into rows of raw string fields. Handles quoted fields
/// ("" as the quote escape), embedded separators and newlines, and both \n
/// and \r\n line endings. A trailing newline does not produce an empty row.
/// Parse errors name the 1-based line they occur on. When `row_lines` is
/// non-null it receives, per returned row, the 1-based line the row STARTS
/// on — quoted fields may span lines, so row index and line number diverge;
/// the higher-level readers use this map to report errors by source line.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text, std::vector<size_t>* row_lines = nullptr);

/// Quotes a field if it contains the separator, quotes or newlines.
std::string CsvEscapeField(std::string_view field);

/// Serializes a table with a header row. NULL cells become empty fields.
std::string WriteTableCsv(const Table& table);

/// Parses CSV text (header row required) into a table named `table_name`.
/// Column types are inferred: a column where every non-empty cell parses as
/// an integer is INT64; else if every non-empty cell parses as a number,
/// DOUBLE; otherwise STRING. Empty cells load as NULL.
Result<Table> ReadTableCsv(const std::string& table_name,
                           std::string_view text);

/// Parses an observation stream CSV with header "source,entity,value"
/// (column order free, extra columns ignored, case-insensitive names).
/// `value` must be FINITE numeric in every row (inf/nan would poison φK and
/// every estimator downstream); source and entity must be non-empty. Every
/// rejection names the offending 1-based source line and field content —
/// malformed rows, truncated trailing rows, and unterminated quotes all
/// come back as descriptive kParseError, never a crash or silent skip.
Result<std::vector<Observation>> ReadObservationsCsv(std::string_view text);

/// Serializes an observation stream with the canonical header.
std::string WriteObservationsCsv(const std::vector<Observation>& stream);

}  // namespace uuq

#endif  // UUQ_DB_CSV_H_
