#include "db/query.h"

#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <utility>

#include "common/macros.h"

namespace uuq {

std::string AggregateQuery::ToString() const {
  std::string out = "SELECT ";
  out += AggregateKindName(aggregate);
  out += "(" + attribute + ") FROM " + table_name;
  if (predicate != nullptr) {
    const std::string pred = predicate->ToString();
    if (pred != "TRUE") out += " WHERE " + pred;
  }
  if (!group_by.empty()) out += " GROUP BY " + group_by;
  return out;
}

double QueryResult::AsDoubleOrNan() const {
  auto d = value.ToDouble();
  return d.ok() ? d.value() : std::numeric_limits<double>::quiet_NaN();
}

Result<QueryResult> ExecuteAggregateQuery(const AggregateQuery& query,
                                          const Table& table) {
  if (!query.group_by.empty()) {
    return Status::InvalidArgument(
        "query has GROUP BY; use ExecuteGroupedAggregateQuery");
  }
  const Schema& schema = table.schema();
  const bool count_star =
      query.aggregate == AggregateKind::kCount && query.attribute == "*";

  size_t attr_index = 0;
  if (!count_star) {
    auto idx = schema.IndexOf(query.attribute);
    if (!idx.ok()) return idx.status();
    attr_index = idx.value();
  }
  PredicatePtr predicate =
      query.predicate != nullptr ? query.predicate : MakeTrue();
  Status valid = predicate->Validate(schema);
  if (!valid.ok()) return valid;

  Aggregator agg(query.aggregate);
  QueryResult result;
  for (const Row& row : table.rows()) {
    auto matches = predicate->Eval(row, schema);
    if (!matches.ok()) return matches.status();
    if (!matches.value()) continue;
    ++result.rows_matched;
    if (count_star) {
      Status s = agg.Update(Value(int64_t{1}));
      if (!s.ok()) return s;
      continue;
    }
    const Value& cell = row[attr_index];
    Status s = agg.Update(cell);
    if (!s.ok()) return s;
    if (!cell.is_null()) {
      auto d = cell.ToDouble();
      if (d.ok()) result.matched_values.push_back(d.value());
    }
  }
  result.value = agg.Current();
  return result;
}

Result<GroupedQueryResult> ExecuteGroupedAggregateQuery(
    const AggregateQuery& query, const Table& table) {
  if (query.group_by.empty()) {
    return Status::InvalidArgument("query has no GROUP BY column");
  }
  const Schema& schema = table.schema();
  auto group_idx = schema.IndexOf(query.group_by);
  if (!group_idx.ok()) return group_idx.status();

  const bool count_star =
      query.aggregate == AggregateKind::kCount && query.attribute == "*";
  size_t attr_index = 0;
  if (!count_star) {
    auto idx = schema.IndexOf(query.attribute);
    if (!idx.ok()) return idx.status();
    attr_index = idx.value();
  }
  PredicatePtr predicate =
      query.predicate != nullptr ? query.predicate : MakeTrue();
  if (Status valid = predicate->Validate(schema); !valid.ok()) return valid;

  // Group state keyed by the grouping value (Value has a total order).
  std::map<Value, std::pair<Aggregator, QueryResult>,
           std::function<bool(const Value&, const Value&)>>
      groups([](const Value& a, const Value& b) { return a < b; });

  for (const Row& row : table.rows()) {
    auto matches = predicate->Eval(row, schema);
    if (!matches.ok()) return matches.status();
    if (!matches.value()) continue;
    const Value& key = row[group_idx.value()];
    auto [it, inserted] = groups.try_emplace(
        key, std::make_pair(Aggregator(query.aggregate), QueryResult{}));
    Aggregator& agg = it->second.first;
    QueryResult& partial = it->second.second;
    ++partial.rows_matched;
    if (count_star) {
      if (Status s = agg.Update(Value(int64_t{1})); !s.ok()) return s;
      continue;
    }
    const Value& cell = row[attr_index];
    if (Status s = agg.Update(cell); !s.ok()) return s;
    if (!cell.is_null()) {
      auto d = cell.ToDouble();
      if (d.ok()) partial.matched_values.push_back(d.value());
    }
  }

  GroupedQueryResult out;
  out.groups.reserve(groups.size());
  for (auto& [key, state] : groups) {
    state.second.value = state.first.Current();
    out.groups.emplace_back(key, std::move(state.second));
  }
  return out;
}

}  // namespace uuq
