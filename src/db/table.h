// Row-oriented in-memory table.
//
// Tables here hold the integrated database K and the per-source relations;
// they are small (thousands of rows), so a simple row store with typed
// append-time validation is the right tool — no paging, no indexes.
#ifndef UUQ_DB_TABLE_H_
#define UUQ_DB_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/schema.h"
#include "db/value.h"

namespace uuq {

/// A row is a vector of cells matching the table schema positionally.
using Row = std::vector<Value>;

class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row after validating arity and cell types (null is allowed in
  /// any column).
  Status Append(Row row);

  /// Appends without validation — for trusted internal producers.
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// All values of one column (by index).
  std::vector<Value> Column(size_t field_index) const;

  /// Numeric column as doubles; nulls are skipped. Fails when the column is
  /// missing or non-numeric values are present.
  Result<std::vector<double>> NumericColumn(const std::string& name) const;

  /// ASCII rendering (header + up to `max_rows` rows) for examples/demos.
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace uuq

#endif  // UUQ_DB_TABLE_H_
