#include "db/sql_parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/strings.h"
#include "db/predicate.h"

namespace uuq {
namespace {

enum class TokenType {
  kIdentifier,
  kNumber,
  kString,
  kSymbol,  // ( ) , * = != <> < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    const size_t n = input_.size();
    while (i < n) {
      const char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(input_[i])) ||
                         input_[i] == '_')) {
          ++i;
        }
        tokens.push_back(
            {TokenType::kIdentifier, input_.substr(start, i - start), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < n &&
           (std::isdigit(static_cast<unsigned char>(input_[i + 1])) ||
            input_[i + 1] == '.')) ||
          (c == '.' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        size_t start = i;
        if (input_[i] == '-') ++i;
        bool seen_dot = false, seen_exp = false;
        while (i < n) {
          const char d = input_[i];
          if (std::isdigit(static_cast<unsigned char>(d))) {
            ++i;
          } else if (d == '.' && !seen_dot && !seen_exp) {
            seen_dot = true;
            ++i;
          } else if ((d == 'e' || d == 'E') && !seen_exp) {
            seen_exp = true;
            ++i;
            if (i < n && (input_[i] == '+' || input_[i] == '-')) ++i;
          } else {
            break;
          }
        }
        tokens.push_back(
            {TokenType::kNumber, input_.substr(start, i - start), start});
        continue;
      }
      if (c == '\'') {
        size_t start = i;
        ++i;
        std::string text;
        bool closed = false;
        while (i < n) {
          if (input_[i] == '\'') {
            if (i + 1 < n && input_[i + 1] == '\'') {
              text += '\'';
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            text += input_[i];
            ++i;
          }
        }
        if (!closed) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(start));
        }
        tokens.push_back({TokenType::kString, std::move(text), start});
        continue;
      }
      // Multi-character operators first.
      auto two = input_.substr(i, 2);
      if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
        tokens.push_back({TokenType::kSymbol, two, i});
        i += 2;
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == '*' || c == '=' ||
          c == '<' || c == '>') {
        tokens.push_back({TokenType::kSymbol, std::string(1, c), i});
        ++i;
        continue;
      }
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at offset " + std::to_string(i));
    }
    tokens.push_back({TokenType::kEnd, "", n});
    return tokens;
  }

 private:
  const std::string& input_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AggregateQuery> Parse() {
    AggregateQuery query;
    if (auto s = ExpectKeyword("SELECT"); !s.ok()) return s;

    const Token agg_token = Peek();
    if (agg_token.type != TokenType::kIdentifier) {
      return Error("expected an aggregate function");
    }
    auto kind = ParseAggregateKind(agg_token.text);
    if (!kind.ok()) return kind.status();
    query.aggregate = kind.value();
    Advance();

    if (auto s = ExpectSymbol("("); !s.ok()) return s;
    const Token attr = Peek();
    if (attr.type == TokenType::kSymbol && attr.text == "*") {
      if (query.aggregate != AggregateKind::kCount) {
        return Error("'*' is only valid inside COUNT()");
      }
      query.attribute = "*";
      Advance();
    } else if (attr.type == TokenType::kIdentifier) {
      query.attribute = attr.text;
      Advance();
    } else {
      return Error("expected a column name or '*'");
    }
    if (auto s = ExpectSymbol(")"); !s.ok()) return s;

    if (auto s = ExpectKeyword("FROM"); !s.ok()) return s;
    const Token table = Peek();
    if (table.type != TokenType::kIdentifier) {
      return Error("expected a table name after FROM");
    }
    query.table_name = table.text;
    Advance();

    if (IsKeyword(Peek(), "WHERE")) {
      Advance();
      auto predicate = ParseOr();
      if (!predicate.ok()) return predicate.status();
      query.predicate = predicate.value();
    } else {
      query.predicate = MakeTrue();
    }

    if (IsKeyword(Peek(), "GROUP")) {
      Advance();
      if (auto s = ExpectKeyword("BY"); !s.ok()) return s;
      const Token column = Peek();
      if (column.type != TokenType::kIdentifier) {
        return Error("expected a column name after GROUP BY");
      }
      query.group_by = column.text;
      Advance();
    }

    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return query;
  }

 private:
  Result<PredicatePtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    PredicatePtr node = lhs.value();
    while (IsKeyword(Peek(), "OR")) {
      Advance();
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      node = MakeOr(std::move(node), rhs.value());
    }
    return node;
  }

  Result<PredicatePtr> ParseAnd() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    PredicatePtr node = lhs.value();
    while (IsKeyword(Peek(), "AND")) {
      Advance();
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      node = MakeAnd(std::move(node), rhs.value());
    }
    return node;
  }

  Result<PredicatePtr> ParseUnary() {
    if (IsKeyword(Peek(), "NOT")) {
      Advance();
      auto inner = ParseUnary();
      if (!inner.ok()) return inner;
      return MakeNot(inner.value());
    }
    if (Peek().type == TokenType::kSymbol && Peek().text == "(") {
      Advance();
      auto inner = ParseOr();
      if (!inner.ok()) return inner;
      if (auto s = ExpectSymbol(")"); !s.ok()) return s;
      return inner;
    }
    return ParseComparison();
  }

  Result<PredicatePtr> ParseComparison() {
    const Token column = Peek();
    if (column.type != TokenType::kIdentifier) {
      return Error("expected a column name in predicate");
    }
    Advance();
    const Token op_token = Peek();
    if (op_token.type != TokenType::kSymbol) {
      return Error("expected a comparison operator");
    }
    CompareOp op;
    if (op_token.text == "=") {
      op = CompareOp::kEq;
    } else if (op_token.text == "!=" || op_token.text == "<>") {
      op = CompareOp::kNe;
    } else if (op_token.text == "<") {
      op = CompareOp::kLt;
    } else if (op_token.text == "<=") {
      op = CompareOp::kLe;
    } else if (op_token.text == ">") {
      op = CompareOp::kGt;
    } else if (op_token.text == ">=") {
      op = CompareOp::kGe;
    } else {
      return Error("unknown comparison operator '" + op_token.text + "'");
    }
    Advance();
    auto literal = ParseLiteral();
    if (!literal.ok()) return literal.status();
    return MakeComparison(column.text, op, literal.value());
  }

  Result<Value> ParseLiteral() {
    const Token t = Peek();
    if (t.type == TokenType::kNumber) {
      Advance();
      // Integers stay integral so equality against INT64 columns is exact.
      if (t.text.find_first_of(".eE") == std::string::npos) {
        return Value(static_cast<int64_t>(std::strtoll(t.text.c_str(),
                                                       nullptr, 10)));
      }
      return Value(std::strtod(t.text.c_str(), nullptr));
    }
    if (t.type == TokenType::kString) {
      Advance();
      return Value(t.text);
    }
    if (t.type == TokenType::kIdentifier) {
      if (EqualsIgnoreCase(t.text, "true")) {
        Advance();
        return Value(true);
      }
      if (EqualsIgnoreCase(t.text, "false")) {
        Advance();
        return Value(false);
      }
      if (EqualsIgnoreCase(t.text, "null")) {
        Advance();
        return Value::Null();
      }
    }
    return Status::ParseError("expected a literal at offset " +
                              std::to_string(t.position));
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  static bool IsKeyword(const Token& t, const char* kw) {
    return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(Peek(), kw)) {
      return Status::ParseError(std::string("expected keyword ") + kw +
                                " at offset " +
                                std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* symbol) {
    if (Peek().type != TokenType::kSymbol || Peek().text != symbol) {
      return Status::ParseError(std::string("expected '") + symbol +
                                "' at offset " +
                                std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().position));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<AggregateQuery> ParseQuery(const std::string& sql) {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace uuq
