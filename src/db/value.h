// Dynamically typed cell value for the mini database substrate.
//
// The integrated database K (paper §2.2) is an ordinary relational view; the
// estimators only need numeric attributes, but sources carry entity names and
// lineage strings, so Value supports null / bool / int64 / double / string
// with total ordering and hashing (needed for grouping and MIN/MAX).
#ifndef UUQ_DB_VALUE_H_
#define UUQ_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace uuq {

/// The supported column types.
enum class ValueType { kNull = 0, kBool, kInt64, kDouble, kString };

const char* ValueTypeName(ValueType type);

/// A single cell. Small, copyable, totally ordered (nulls sort first, then
/// bools, numerics — int64 and double compare numerically — then strings).
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  /// Typed accessors; abort on type mismatch (use type() first).
  bool AsBool() const;
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric coercion: int64 and double become double; everything else is an
  /// error. This is what aggregates call.
  Result<double> ToDouble() const;

  /// Total ordering across types; SQL-style except that nulls are ordered
  /// (first) instead of propagating.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Display form ("NULL", "true", "3", "3.5", "abc").
  std::string ToString() const;

  /// Stable hash (numerically equal int64/double hash identically).
  size_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

}  // namespace uuq

#endif  // UUQ_DB_VALUE_H_
