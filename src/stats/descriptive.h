// Descriptive statistics helpers used across estimators and experiments.
#ifndef UUQ_STATS_DESCRIPTIVE_H_
#define UUQ_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace uuq {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased (n−1) sample variance; 0 for fewer than two values.
double SampleVariance(const std::vector<double>& xs);

/// Population (n) variance; 0 for an empty input.
double PopulationVariance(const std::vector<double>& xs);

/// sqrt(SampleVariance).
double SampleStdDev(const std::vector<double>& xs);

double Sum(const std::vector<double>& xs);
double Min(const std::vector<double>& xs);  ///< +inf for empty input.
double Max(const std::vector<double>& xs);  ///< -inf for empty input.

/// Median via nth_element (copies the input).
double Median(std::vector<double> xs);

/// Linear-interpolated quantile, q in [0, 1]. NaN for empty input.
double Quantile(std::vector<double> xs, double q);

/// Nearest-rank percentile of an ALREADY-SORTED (ascending) vector, q in
/// [0, 1]. No copy, no interpolation: returns the element at rank
/// round(q·(n−1)) — i.e. the observed value whose rank is closest to the
/// requested quantile position, ties rounding up (0.5 → the higher rank).
/// So q=0 is the min, q=1 the max, and q=0.5 on an even-length input is the
/// UPPER of the two middle values (unlike Quantile, which interpolates).
/// Preferred for latency tails, where an actually-observed value is more
/// honest than an interpolated one. NaN for empty input.
double SortedPercentile(const std::vector<double>& sorted, double q);

/// Mean absolute relative error of estimates vs a reference value.
double MeanRelativeError(const std::vector<double>& estimates,
                         double reference);

/// Gini coefficient of non-negative contributions; 0 = perfectly even.
/// Used to diagnose streakers (uneven source contributions, §6.3).
double GiniCoefficient(std::vector<double> xs);

/// Same, sorting `xs` in place — for hot paths that reuse a scratch buffer
/// instead of paying the by-value copy (per-replicate advisor calls).
double GiniCoefficientInPlace(std::vector<double>* xs);

}  // namespace uuq

#endif  // UUQ_STATS_DESCRIPTIVE_H_
