// Two-dimensional quadratic surface fitting (Algorithm 3, lines 11-12).
//
// The Monte-Carlo estimator evaluates a KL-divergence objective on a coarse
// (θN, θλ) grid, fits z ≈ β0 + β1·x + β2·y + β3·x² + β4·y² + β5·x·y by least
// squares to denoise, and takes the argmin of the fitted surface over the
// search box as the final parameter estimate.
#ifndef UUQ_STATS_CURVE_FIT_H_
#define UUQ_STATS_CURVE_FIT_H_

#include <utility>
#include <vector>

#include "common/status.h"

namespace uuq {

/// z(x, y) = b0 + bx·x + by·y + bxx·x² + byy·y² + bxy·x·y.
struct QuadraticSurface {
  double b0 = 0.0;
  double bx = 0.0;
  double by = 0.0;
  double bxx = 0.0;
  double byy = 0.0;
  double bxy = 0.0;

  double Eval(double x, double y) const {
    return b0 + bx * x + by * y + bxx * x * x + byy * y * y + bxy * x * y;
  }
};

/// Fits the surface to samples (xs[i], ys[i]) -> zs[i] by least squares.
/// Needs at least 6 non-degenerate points. Non-finite z samples (e.g. an
/// infinite KL divergence) are skipped.
Result<QuadraticSurface> FitQuadraticSurface(const std::vector<double>& xs,
                                             const std::vector<double>& ys,
                                             const std::vector<double>& zs);

/// Minimizes the surface over the box [x_lo, x_hi] × [y_lo, y_hi] with a
/// dense grid scan followed by one local refinement pass. Returns (x*, y*).
std::pair<double, double> MinimizeOnBox(const QuadraticSurface& surface,
                                        double x_lo, double x_hi, double y_lo,
                                        double y_hi, int grid_points = 64);

}  // namespace uuq

#endif  // UUQ_STATS_CURVE_FIT_H_
