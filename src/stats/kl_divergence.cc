#include "stats/kl_divergence.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace uuq {

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  UUQ_CHECK_MSG(p.size() == q.size(), "KL requires equal supports");
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    if (q[i] <= 0.0) return std::numeric_limits<double>::infinity();
    kl += p[i] * std::log(p[i] / q[i]);
  }
  // Guard tiny negative values caused by floating-point rounding.
  return std::max(kl, 0.0);
}

void AlignMultiplicities(std::vector<double>* observed,
                         std::vector<double>* simulated) {
  std::sort(observed->begin(), observed->end(), std::greater<double>());
  std::sort(simulated->begin(), simulated->end(), std::greater<double>());
  const size_t support = std::max(observed->size(), simulated->size());
  observed->resize(support, 0.0);
  simulated->resize(support, 0.0);
}

std::vector<double> SmoothAndNormalize(std::vector<double> counts,
                                       double epsilon) {
  double total = 0.0;
  for (double& v : counts) {
    if (v <= 0.0) v = epsilon;
    total += v;
  }
  if (total > 0.0) {
    for (double& v : counts) v /= total;
  }
  return counts;
}

double AlignedKlDivergence(std::vector<double> observed_counts,
                           std::vector<double> simulated_counts,
                           double epsilon) {
  if (observed_counts.empty() && simulated_counts.empty()) return 0.0;
  AlignMultiplicities(&observed_counts, &simulated_counts);
  const std::vector<double> p =
      SmoothAndNormalize(std::move(observed_counts), epsilon);
  const std::vector<double> q =
      SmoothAndNormalize(std::move(simulated_counts), epsilon);
  return KlDivergence(p, q);
}

double AlignedKlDivergenceSortedDesc(const double* observed,
                                     size_t observed_len, double observed_sum,
                                     const double* simulated,
                                     size_t simulated_len, double simulated_sum,
                                     size_t support, double epsilon) {
  UUQ_DCHECK(observed_len <= support && simulated_len <= support);
  if (support == 0) return 0.0;
  const double total_p =
      observed_sum + static_cast<double>(support - observed_len) * epsilon;
  const double total_q =
      simulated_sum + static_cast<double>(support - simulated_len) * epsilon;
  if (total_p <= 0.0) return 0.0;
  if (total_q <= 0.0) return std::numeric_limits<double>::infinity();

  double kl = 0.0;
  const size_t overlap = std::max(observed_len, simulated_len);
  for (size_t i = 0; i < overlap; ++i) {
    const double p = (i < observed_len ? observed[i] : epsilon) / total_p;
    const double q = (i < simulated_len ? simulated[i] : epsilon) / total_q;
    if (p <= 0.0) continue;
    if (q <= 0.0) return std::numeric_limits<double>::infinity();
    kl += p * std::log(p / q);
  }
  // Every remaining cell is epsilon in both vectors: a constant term.
  const size_t tail = support - overlap;
  if (tail > 0 && epsilon > 0.0) {
    const double p = epsilon / total_p;
    kl += static_cast<double>(tail) * p * std::log(total_q / total_p);
  }
  return std::max(kl, 0.0);
}

}  // namespace uuq
