#include "stats/kl_divergence.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace uuq {

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  UUQ_CHECK_MSG(p.size() == q.size(), "KL requires equal supports");
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    if (q[i] <= 0.0) return std::numeric_limits<double>::infinity();
    kl += p[i] * std::log(p[i] / q[i]);
  }
  // Guard tiny negative values caused by floating-point rounding.
  return std::max(kl, 0.0);
}

void AlignMultiplicities(std::vector<double>* observed,
                         std::vector<double>* simulated) {
  std::sort(observed->begin(), observed->end(), std::greater<double>());
  std::sort(simulated->begin(), simulated->end(), std::greater<double>());
  const size_t support = std::max(observed->size(), simulated->size());
  observed->resize(support, 0.0);
  simulated->resize(support, 0.0);
}

std::vector<double> SmoothAndNormalize(std::vector<double> counts,
                                       double epsilon) {
  double total = 0.0;
  for (double& v : counts) {
    if (v <= 0.0) v = epsilon;
    total += v;
  }
  if (total > 0.0) {
    for (double& v : counts) v /= total;
  }
  return counts;
}

double AlignedKlDivergence(std::vector<double> observed_counts,
                           std::vector<double> simulated_counts,
                           double epsilon) {
  if (observed_counts.empty() && simulated_counts.empty()) return 0.0;
  AlignMultiplicities(&observed_counts, &simulated_counts);
  const std::vector<double> p =
      SmoothAndNormalize(std::move(observed_counts), epsilon);
  const std::vector<double> q =
      SmoothAndNormalize(std::move(simulated_counts), epsilon);
  return KlDivergence(p, q);
}

}  // namespace uuq
