#include "stats/sampling.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>

#include "common/macros.h"

namespace uuq {

std::vector<int> WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, int k, Rng* rng) {
  UUQ_CHECK(rng != nullptr);
  UUQ_CHECK(k >= 0);
  int drawable = 0;
  for (double w : weights) {
    UUQ_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    if (w > 0.0) ++drawable;
  }
  k = std::min(k, drawable);
  if (k == 0) return {};

  // Efraimidis-Spirakis: item i gets key u^(1/w_i); the k largest keys form
  // an exact weighted sample without replacement. Work in log space for
  // numerical stability: log key = log(u)/w_i.
  using Entry = std::pair<double, int>;  // (log-key, index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    double u = 0.0;
    do {
      u = rng->NextDouble();
    } while (u <= 1e-300);
    const double log_key = std::log(u) / weights[i];
    if (static_cast<int>(heap.size()) < k) {
      heap.emplace(log_key, static_cast<int>(i));
    } else if (log_key > heap.top().first) {
      heap.pop();
      heap.emplace(log_key, static_cast<int>(i));
    }
  }
  std::vector<int> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top().second);
    heap.pop();
  }
  // Highest key = first drawn under successive sampling; reverse so callers
  // can treat the vector as arrival order.
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<int> WeightedSampleWithReplacement(
    const std::vector<double>& weights, int k, Rng* rng) {
  UUQ_CHECK(rng != nullptr);
  UUQ_CHECK(k >= 0);
  if (k == 0) return {};
  AliasSampler sampler(weights);
  std::vector<int> out;
  out.reserve(k);
  for (int i = 0; i < k; ++i) out.push_back(sampler.Sample(rng));
  return out;
}

void PartialShuffler::EnsureIdentity(int n) {
  if (perm_.size() == static_cast<size_t>(n)) return;
  perm_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm_[static_cast<size_t>(i)] = i;
}

void WeightedWorSelector::Select(const std::vector<double>& weights, int k,
                                 Rng* rng) {
  UUQ_CHECK(rng != nullptr);
  UUQ_CHECK(k >= 0);
  heap_.clear();
  if (k == 0) return;
  // One uniform per positive-weight item, in index order (the same stream
  // consumption as WeightedSampleWithoutReplacement). heap_ is a min-heap on
  // the log-key holding the k best items seen so far; most items fail the
  // single comparison against the heap minimum.
  const auto greater = std::greater<std::pair<double, int>>();
  for (size_t i = 0; i < weights.size(); ++i) {
    UUQ_CHECK_MSG(weights[i] >= 0.0, "weights must be non-negative");
    if (weights[i] <= 0.0) continue;
    double u = 0.0;
    do {
      u = rng->NextDouble();
    } while (u <= 1e-300);
    const double log_key = std::log(u) / weights[i];
    if (static_cast<int>(heap_.size()) < k) {
      heap_.emplace_back(log_key, static_cast<int>(i));
      std::push_heap(heap_.begin(), heap_.end(), greater);
    } else if (log_key > heap_.front().first) {
      std::pop_heap(heap_.begin(), heap_.end(), greater);
      heap_.back() = {log_key, static_cast<int>(i)};
      std::push_heap(heap_.begin(), heap_.end(), greater);
    }
  }
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  UUQ_CHECK_MSG(!weights.empty(), "AliasSampler needs at least one weight");
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    UUQ_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  UUQ_CHECK_MSG(total > 0.0, "AliasSampler needs a positive total weight");

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<int> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<int>(i));
  }
  while (!small.empty() && !large.empty()) {
    const int s = small.back();
    small.pop_back();
    const int l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (int i : large) probability_[i] = 1.0;
  for (int i : small) probability_[i] = 1.0;
}

int AliasSampler::Sample(Rng* rng) const {
  UUQ_CHECK(rng != nullptr);
  const size_t column = rng->NextBounded(probability_.size());
  return rng->NextDouble() < probability_[column]
             ? static_cast<int>(column)
             : alias_[column];
}

}  // namespace uuq
