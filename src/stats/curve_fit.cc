#include "stats/curve_fit.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "stats/linalg.h"

namespace uuq {

Result<QuadraticSurface> FitQuadraticSurface(const std::vector<double>& xs,
                                             const std::vector<double>& ys,
                                             const std::vector<double>& zs) {
  if (xs.size() != ys.size() || xs.size() != zs.size()) {
    return Status::InvalidArgument("FitQuadraticSurface: length mismatch");
  }
  std::vector<size_t> usable;
  for (size_t i = 0; i < zs.size(); ++i) {
    if (std::isfinite(zs[i]) && std::isfinite(xs[i]) && std::isfinite(ys[i])) {
      usable.push_back(i);
    }
  }
  if (usable.size() < 6) {
    return Status::InvalidArgument(
        "FitQuadraticSurface: need >= 6 finite samples");
  }
  // Normalize coordinates to ~[0,1] to keep the normal equations well
  // conditioned (raw θN values can be in the thousands).
  double x_lo = xs[usable[0]], x_hi = xs[usable[0]];
  double y_lo = ys[usable[0]], y_hi = ys[usable[0]];
  for (size_t i : usable) {
    x_lo = std::min(x_lo, xs[i]);
    x_hi = std::max(x_hi, xs[i]);
    y_lo = std::min(y_lo, ys[i]);
    y_hi = std::max(y_hi, ys[i]);
  }
  const double x_span = (x_hi > x_lo) ? (x_hi - x_lo) : 1.0;
  const double y_span = (y_hi > y_lo) ? (y_hi - y_lo) : 1.0;

  Matrix design(usable.size(), 6);
  std::vector<double> rhs(usable.size());
  for (size_t row = 0; row < usable.size(); ++row) {
    const size_t i = usable[row];
    const double x = (xs[i] - x_lo) / x_span;
    const double y = (ys[i] - y_lo) / y_span;
    design.At(row, 0) = 1.0;
    design.At(row, 1) = x;
    design.At(row, 2) = y;
    design.At(row, 3) = x * x;
    design.At(row, 4) = y * y;
    design.At(row, 5) = x * y;
    rhs[row] = zs[i];
  }
  auto solved = LeastSquares(design, rhs);
  if (!solved.ok()) return solved.status();
  const std::vector<double>& beta = solved.value();

  // Un-normalize: with u=(x-x_lo)/sx, v=(y-y_lo)/sy expand the polynomial
  // back into raw coordinates.
  const double sx = 1.0 / x_span;
  const double sy = 1.0 / y_span;
  QuadraticSurface s;
  const double b0 = beta[0], b1 = beta[1], b2 = beta[2], b3 = beta[3],
               b4 = beta[4], b5 = beta[5];
  s.bxx = b3 * sx * sx;
  s.byy = b4 * sy * sy;
  s.bxy = b5 * sx * sy;
  s.bx = b1 * sx - 2.0 * b3 * sx * sx * x_lo - b5 * sx * sy * y_lo;
  s.by = b2 * sy - 2.0 * b4 * sy * sy * y_lo - b5 * sx * sy * x_lo;
  s.b0 = b0 - b1 * sx * x_lo - b2 * sy * y_lo + b3 * sx * sx * x_lo * x_lo +
         b4 * sy * sy * y_lo * y_lo + b5 * sx * sy * x_lo * y_lo;
  return s;
}

std::pair<double, double> MinimizeOnBox(const QuadraticSurface& surface,
                                        double x_lo, double x_hi, double y_lo,
                                        double y_hi, int grid_points) {
  UUQ_CHECK(grid_points >= 2);
  if (x_hi < x_lo) std::swap(x_lo, x_hi);
  if (y_hi < y_lo) std::swap(y_lo, y_hi);

  auto scan = [&surface](double xa, double xb, double ya, double yb,
                         int points) {
    double best_x = xa, best_y = ya;
    double best_z = surface.Eval(xa, ya);
    for (int i = 0; i < points; ++i) {
      const double x =
          xa + (xb - xa) * static_cast<double>(i) / (points - 1);
      for (int j = 0; j < points; ++j) {
        const double y =
            ya + (yb - ya) * static_cast<double>(j) / (points - 1);
        const double z = surface.Eval(x, y);
        if (z < best_z) {
          best_z = z;
          best_x = x;
          best_y = y;
        }
      }
    }
    return std::make_pair(best_x, best_y);
  };

  auto [x0, y0] = scan(x_lo, x_hi, y_lo, y_hi, grid_points);
  // One refinement pass around the coarse optimum (one cell in each
  // direction), clamped to the box.
  const double dx = (x_hi - x_lo) / (grid_points - 1);
  const double dy = (y_hi - y_lo) / (grid_points - 1);
  return scan(std::max(x_lo, x0 - dx), std::min(x_hi, x0 + dx),
              std::max(y_lo, y0 - dy), std::min(y_hi, y0 + dy), grid_points);
}

}  // namespace uuq
