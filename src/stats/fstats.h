// Frequency statistics (the "f-statistics" of the paper, Appendix A).
//
// Given a sample S with duplicates, f_j is the number of distinct data items
// observed exactly j times. f_1 counts the singletons, f_2 the doubletons.
// n = Σ j·f_j is the sample size and c = Σ f_j the number of distinct items.
// Every estimator in src/core consumes this summary, never the raw sample.
#ifndef UUQ_STATS_FSTATS_H_
#define UUQ_STATS_FSTATS_H_

#include <cstdint>
#include <map>
#include <vector>

namespace uuq {

/// Immutable snapshot of the f-statistics of a sample.
class FrequencyStatistics {
 public:
  FrequencyStatistics() = default;

  /// Builds the statistics from per-item multiplicities (one entry per
  /// distinct item; zero entries are ignored, negatives are invalid).
  static FrequencyStatistics FromCounts(const std::vector<int64_t>& counts);

  /// Builds directly from a histogram {occurrences -> #items}.
  static FrequencyStatistics FromHistogram(
      const std::map<int64_t, int64_t>& histogram);

  /// Sample size n = |S| (observations, duplicates included).
  int64_t n() const { return n_; }

  /// Number of distinct observed items c = |K|.
  int64_t c() const { return c_; }

  /// f_j: number of items observed exactly j times (0 for absent j).
  int64_t f(int64_t j) const;

  /// Convenience accessors for the two most used statistics.
  int64_t singletons() const { return f(1); }
  int64_t doubletons() const { return f(2); }

  /// Σ_i i·(i−1)·f_i — the numerator of the CV estimator (Eq. 6).
  int64_t SumIiMinusOneFi() const { return sum_i_i_minus_1_fi_; }

  /// Full histogram, ordered by occurrence count.
  const std::map<int64_t, int64_t>& histogram() const { return histogram_; }

  /// True when the sample is empty.
  bool empty() const { return n_ == 0; }

 private:
  std::map<int64_t, int64_t> histogram_;
  int64_t n_ = 0;
  int64_t c_ = 0;
  int64_t sum_i_i_minus_1_fi_ = 0;
};

}  // namespace uuq

#endif  // UUQ_STATS_FSTATS_H_
