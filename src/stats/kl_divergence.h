// Discrete Kullback-Leibler divergence with the paper's index-alignment and
// smoothing steps (Algorithm 2, lines 9-11).
//
// The Monte-Carlo estimator compares an observed sample S against a simulated
// sample Q. Both are reduced to multiplicity histograms (observation count
// per distinct item), rank-aligned by sorting descending, padded to a common
// support, smoothed so KL stays finite when S has fewer distinct items than
// the simulation, and normalized to probability vectors.
#ifndef UUQ_STATS_KL_DIVERGENCE_H_
#define UUQ_STATS_KL_DIVERGENCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uuq {

/// KL(p || q) for two probability vectors of equal length. Terms with
/// p_i = 0 contribute 0; a term with p_i > 0 and q_i = 0 yields +infinity.
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// The "indexing" step: sorts multiplicities descending and pads both vectors
/// with zeros to a common length.
void AlignMultiplicities(std::vector<double>* observed,
                         std::vector<double>* simulated);

/// Adds `epsilon` to every zero cell, then renormalizes to sum 1.
std::vector<double> SmoothAndNormalize(std::vector<double> counts,
                                       double epsilon);

/// Full Algorithm-2 distance between two multiplicity vectors: align, smooth
/// (epsilon on zero cells), normalize, KL(observed' || simulated').
/// Returns 0 when both samples are empty.
double AlignedKlDivergence(std::vector<double> observed_counts,
                           std::vector<double> simulated_counts,
                           double epsilon = 1e-6);

/// Allocation-free equivalent of AlignedKlDivergence for pre-sorted input:
/// `observed`/`simulated` hold only the POSITIVE multiplicities, already
/// sorted descending, with their sums precomputed; `support` is the common
/// padded length (Algorithm 2 uses max(#observed cells, θN)). Cells past each
/// vector's length count as zeros, i.e. smoothed to `epsilon`. Agrees with
/// AlignedKlDivergence to floating-point rounding; the zero-count tail is
/// folded into one closed-form term so the cost is O(observed_len +
/// simulated_len), independent of `support`.
double AlignedKlDivergenceSortedDesc(const double* observed,
                                     size_t observed_len, double observed_sum,
                                     const double* simulated,
                                     size_t simulated_len, double simulated_sum,
                                     size_t support, double epsilon);

}  // namespace uuq

#endif  // UUQ_STATS_KL_DIVERGENCE_H_
