#include "stats/linalg.h"

#include <cmath>

#include "common/macros.h"

namespace uuq {

Matrix Matrix::Multiply(const Matrix& other) const {
  UUQ_CHECK(cols_ == other.rows());
  Matrix out(rows_, other.cols());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a_ik = At(i, k);
      if (a_ik == 0.0) continue;
      for (size_t j = 0; j < other.cols(); ++j) {
        out.At(i, j) += a_ik * other.At(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out.At(j, i) = At(i, j);
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  UUQ_CHECK(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += At(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Result<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem requires square A");
  }
  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(a.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double cand = std::fabs(a.At(r, col));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::NumericError("singular or ill-conditioned system");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(a.At(col, j), a.At(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a.At(r, col) / a.At(col, col);
      if (factor == 0.0) continue;
      for (size_t j = col; j < n; ++j) a.At(r, j) -= factor * a.At(col, j);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (size_t j = i + 1; j < n; ++j) acc -= a.At(i, j) * x[j];
    x[i] = acc / a.At(i, i);
  }
  return x;
}

Result<std::vector<double>> LeastSquares(const Matrix& a,
                                         const std::vector<double>& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("LeastSquares: |b| must equal rows(A)");
  }
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument("LeastSquares: underdetermined system");
  }
  const Matrix at = a.Transposed();
  Matrix normal = at.Multiply(a);
  std::vector<double> rhs = at.MultiplyVector(b);
  return SolveLinearSystem(std::move(normal), std::move(rhs));
}

}  // namespace uuq
