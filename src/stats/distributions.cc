#include "stats/distributions.h"

#include <cmath>

#include "common/macros.h"

namespace uuq {

std::vector<double> Normalize(std::vector<double> weights) {
  double total = 0.0;
  for (double w : weights) {
    UUQ_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  if (total <= 0.0) {
    const double uniform = weights.empty() ? 0.0 : 1.0 / weights.size();
    for (double& w : weights) w = uniform;
    return weights;
  }
  for (double& w : weights) w /= total;
  return weights;
}

std::vector<double> UniformPublicity(int n) {
  UUQ_CHECK(n > 0);
  return std::vector<double>(n, 1.0 / n);
}

std::vector<double> ExponentialPublicity(int n, double lambda) {
  UUQ_CHECK(n > 0);
  if (n == 1) return {1.0};
  std::vector<double> p(n);
  for (int i = 0; i < n; ++i) {
    p[i] = std::exp(-lambda * static_cast<double>(i) / (n - 1));
  }
  return Normalize(std::move(p));
}

std::vector<double> MonteCarloPublicity(int n, double theta_lambda) {
  return ExponentialPublicity(n, 10.0 * theta_lambda);
}

std::vector<double> ZipfPublicity(int n, double exponent) {
  UUQ_CHECK(n > 0);
  std::vector<double> p(n);
  for (int i = 0; i < n; ++i) {
    p[i] = std::pow(static_cast<double>(i + 1), -exponent);
  }
  return Normalize(std::move(p));
}

std::vector<double> LogNormalPublicity(int n, double sigma, Rng* rng) {
  UUQ_CHECK(n > 0);
  UUQ_CHECK(rng != nullptr);
  std::vector<double> p(n);
  for (int i = 0; i < n; ++i) {
    p[i] = std::exp(sigma * rng->NextGaussian());
  }
  return Normalize(std::move(p));
}

}  // namespace uuq
