#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace uuq {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size() - 1);
}

double PopulationVariance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size());
}

double SampleStdDev(const std::vector<double>& xs) {
  return std::sqrt(SampleVariance(xs));
}

double Sum(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum;
}

double Min(const std::vector<double>& xs) {
  double out = std::numeric_limits<double>::infinity();
  for (double x : xs) out = std::min(out, x);
  return out;
}

double Max(const std::vector<double>& xs) {
  double out = -std::numeric_limits<double>::infinity();
  for (double x : xs) out = std::max(out, x);
  return out;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double idx = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(idx));
  const size_t hi = static_cast<size_t>(std::ceil(idx));
  if (lo == hi) return xs[lo];
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double SortedPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  size_t idx = static_cast<size_t>(pos + 0.5);  // nearest rank, ties up
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

double MeanRelativeError(const std::vector<double>& estimates,
                         double reference) {
  if (estimates.empty() || reference == 0.0) return 0.0;
  double total = 0.0;
  for (double e : estimates) {
    total += std::fabs(e - reference) / std::fabs(reference);
  }
  return total / static_cast<double>(estimates.size());
}

double GiniCoefficient(std::vector<double> xs) {
  return GiniCoefficientInPlace(&xs);
}

double GiniCoefficientInPlace(std::vector<double>* xs) {
  if (xs->size() < 2) return 0.0;
  std::sort(xs->begin(), xs->end());
  const double n = static_cast<double>(xs->size());
  double cum_weighted = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < xs->size(); ++i) {
    cum_weighted += (static_cast<double>(i) + 1.0) * (*xs)[i];
    total += (*xs)[i];
  }
  if (total == 0.0) return 0.0;
  return (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
}

}  // namespace uuq
