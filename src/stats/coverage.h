// Sample-coverage statistics (paper §3.1.1).
//
// The Good-Turing coverage estimate Ĉ = 1 − f1/n (Eq. 4) measures how much
// of the ground-truth probability mass the sample has touched; the squared
// coefficient-of-variation estimate γ̂² (Eq. 6) corrects for skew in the
// publicity distribution. Both feed the Chao92 estimator in src/core.
#ifndef UUQ_STATS_COVERAGE_H_
#define UUQ_STATS_COVERAGE_H_

#include <algorithm>
#include <cstdint>

#include "stats/fstats.h"

namespace uuq {

/// One fused evaluation of the Eq. 4 / Eq. 6 chain from raw scalar
/// sufficient statistics (n, c, f1, Σm(m−1)) — the division-hoisted core
/// shared by `SampleStats::Coverage`/`Gamma2`, `Chao92Nhat`, and the batched
/// split-scan kernels (`StatsSumEstimator::DeltaFromStatsBatch`).
///
/// The historical call chain divided by Ĉ twice with the SAME operands —
/// once for Chao92's c/Ĉ base term and once inside γ̂² — and recomputed Ĉ
/// itself per call. Hoisting computes each division exactly once; because a
/// repeated FP expression over identical operands is deterministic, every
/// field below is bit-identical to what the unfused two-call chain produced.
struct CoverageGammaChain {
  double coverage = 0.0;         ///< Ĉ = 1 − f1/n (Eq. 4), clamped to [0, 1]
  double c_over_coverage = 0.0;  ///< c/Ĉ (left 0 when Ĉ ≤ 0 or n == 0)
  double gamma2 = 0.0;           ///< γ̂² (Eq. 6); 0 when undefined
};

inline CoverageGammaChain FusedCoverageGamma(int64_t n, int64_t c, int64_t f1,
                                             int64_t sum_mm1) {
  CoverageGammaChain out;
  if (n == 0) return out;  // empty: nothing is covered
  out.coverage =
      std::clamp(1.0 - static_cast<double>(f1) / static_cast<double>(n), 0.0,
                 1.0);
  if (out.coverage <= 0.0) return out;  // all singletons: Ĉ = 0, γ̂² undefined
  out.c_over_coverage = static_cast<double>(c) / out.coverage;
  if (n >= 2) {
    const double dispersion = static_cast<double>(sum_mm1) /
                              (static_cast<double>(n) * (n - 1));
    out.gamma2 = std::max(out.c_over_coverage * dispersion - 1.0, 0.0);
  }
  return out;
}

/// Good-Turing sample coverage Ĉ = 1 − f1/n (Eq. 4). Returns 0 for an empty
/// sample (nothing is covered). Always in [0, 1].
double GoodTuringCoverage(const FrequencyStatistics& stats);

/// Estimated unknown-unknowns distribution mass M0 = 1 − Ĉ = f1/n.
double UnseenMass(const FrequencyStatistics& stats);

/// Squared coefficient of variation γ̂² (Eq. 6):
///   γ̂² = max{ (c/Ĉ) · Σ i(i−1)f_i / (n(n−1)) − 1 , 0 }.
/// Returns 0 when it is undefined (n < 2 or Ĉ = 0); Chao92 then degenerates
/// to the pure coverage estimator, matching the paper's treatment.
double SquaredCvEstimate(const FrequencyStatistics& stats);

/// True coefficient of variation γ (Eq. 5) of an explicit publicity vector;
/// used by tests and the simulator to label synthetic populations.
double ExactCv(const std::vector<double>& publicities);

/// The paper's §6.5 usability gate: estimates are recommended only once
/// Ĉ ≥ 0.4 ("Chao92 is inaccurate with very low sample coverage").
constexpr double kCoverageRecommendationThreshold = 0.4;
bool CoverageSufficient(const FrequencyStatistics& stats);

}  // namespace uuq

#endif  // UUQ_STATS_COVERAGE_H_
