// Sample-coverage statistics (paper §3.1.1).
//
// The Good-Turing coverage estimate Ĉ = 1 − f1/n (Eq. 4) measures how much
// of the ground-truth probability mass the sample has touched; the squared
// coefficient-of-variation estimate γ̂² (Eq. 6) corrects for skew in the
// publicity distribution. Both feed the Chao92 estimator in src/core.
#ifndef UUQ_STATS_COVERAGE_H_
#define UUQ_STATS_COVERAGE_H_

#include "stats/fstats.h"

namespace uuq {

/// Good-Turing sample coverage Ĉ = 1 − f1/n (Eq. 4). Returns 0 for an empty
/// sample (nothing is covered). Always in [0, 1].
double GoodTuringCoverage(const FrequencyStatistics& stats);

/// Estimated unknown-unknowns distribution mass M0 = 1 − Ĉ = f1/n.
double UnseenMass(const FrequencyStatistics& stats);

/// Squared coefficient of variation γ̂² (Eq. 6):
///   γ̂² = max{ (c/Ĉ) · Σ i(i−1)f_i / (n(n−1)) − 1 , 0 }.
/// Returns 0 when it is undefined (n < 2 or Ĉ = 0); Chao92 then degenerates
/// to the pure coverage estimator, matching the paper's treatment.
double SquaredCvEstimate(const FrequencyStatistics& stats);

/// True coefficient of variation γ (Eq. 5) of an explicit publicity vector;
/// used by tests and the simulator to label synthetic populations.
double ExactCv(const std::vector<double>& publicities);

/// The paper's §6.5 usability gate: estimates are recommended only once
/// Ĉ ≥ 0.4 ("Chao92 is inaccurate with very low sample coverage").
constexpr double kCoverageRecommendationThreshold = 0.4;
bool CoverageSufficient(const FrequencyStatistics& stats);

}  // namespace uuq

#endif  // UUQ_STATS_COVERAGE_H_
