#include "stats/fstats.h"

#include "common/macros.h"

namespace uuq {

FrequencyStatistics FrequencyStatistics::FromCounts(
    const std::vector<int64_t>& counts) {
  std::map<int64_t, int64_t> histogram;
  for (int64_t count : counts) {
    UUQ_CHECK_MSG(count >= 0, "negative multiplicity");
    if (count == 0) continue;
    ++histogram[count];
  }
  return FromHistogram(histogram);
}

FrequencyStatistics FrequencyStatistics::FromHistogram(
    const std::map<int64_t, int64_t>& histogram) {
  FrequencyStatistics stats;
  for (const auto& [occurrences, items] : histogram) {
    UUQ_CHECK_MSG(occurrences > 0, "histogram key must be positive");
    UUQ_CHECK_MSG(items >= 0, "histogram value must be non-negative");
    if (items == 0) continue;
    stats.histogram_[occurrences] = items;
    stats.n_ += occurrences * items;
    stats.c_ += items;
    stats.sum_i_i_minus_1_fi_ += occurrences * (occurrences - 1) * items;
  }
  return stats;
}

int64_t FrequencyStatistics::f(int64_t j) const {
  auto it = histogram_.find(j);
  return it == histogram_.end() ? 0 : it->second;
}

}  // namespace uuq
