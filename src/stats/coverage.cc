#include "stats/coverage.h"

#include <algorithm>
#include <cmath>

namespace uuq {

double GoodTuringCoverage(const FrequencyStatistics& stats) {
  if (stats.n() == 0) return 0.0;
  double coverage =
      1.0 - static_cast<double>(stats.singletons()) / stats.n();
  return std::clamp(coverage, 0.0, 1.0);
}

double UnseenMass(const FrequencyStatistics& stats) {
  return 1.0 - GoodTuringCoverage(stats);
}

double SquaredCvEstimate(const FrequencyStatistics& stats) {
  const int64_t n = stats.n();
  if (n < 2) return 0.0;
  const double coverage = GoodTuringCoverage(stats);
  if (coverage <= 0.0) return 0.0;
  const double c_over_coverage = stats.c() / coverage;
  const double dispersion =
      static_cast<double>(stats.SumIiMinusOneFi()) /
      (static_cast<double>(n) * (n - 1));
  return std::max(c_over_coverage * dispersion - 1.0, 0.0);
}

double ExactCv(const std::vector<double>& publicities) {
  if (publicities.empty()) return 0.0;
  const double n = static_cast<double>(publicities.size());
  double sum = 0.0;
  for (double p : publicities) sum += p;
  const double mean = sum / n;
  if (mean == 0.0) return 0.0;
  double ss = 0.0;
  for (double p : publicities) ss += (p - mean) * (p - mean);
  return std::sqrt(ss / n) / mean;
}

bool CoverageSufficient(const FrequencyStatistics& stats) {
  return GoodTuringCoverage(stats) >= kCoverageRecommendationThreshold;
}

}  // namespace uuq
