#include "stats/coverage.h"

#include <algorithm>
#include <cmath>

namespace uuq {

double GoodTuringCoverage(const FrequencyStatistics& stats) {
  // One division only — identical to FusedCoverageGamma's coverage field
  // (see SampleStats::Coverage for why coverage-only callers skip the
  // fused chain's extra divisions).
  if (stats.n() == 0) return 0.0;
  return std::clamp(
      1.0 - static_cast<double>(stats.singletons()) /
                static_cast<double>(stats.n()),
      0.0, 1.0);
}

double UnseenMass(const FrequencyStatistics& stats) {
  return 1.0 - GoodTuringCoverage(stats);
}

double SquaredCvEstimate(const FrequencyStatistics& stats) {
  return FusedCoverageGamma(stats.n(), stats.c(), stats.singletons(),
                            stats.SumIiMinusOneFi())
      .gamma2;
}

double ExactCv(const std::vector<double>& publicities) {
  if (publicities.empty()) return 0.0;
  const double n = static_cast<double>(publicities.size());
  double sum = 0.0;
  for (double p : publicities) sum += p;
  const double mean = sum / n;
  if (mean == 0.0) return 0.0;
  double ss = 0.0;
  for (double p : publicities) ss += (p - mean) * (p - mean);
  return std::sqrt(ss / n) / mean;
}

bool CoverageSufficient(const FrequencyStatistics& stats) {
  return GoodTuringCoverage(stats) >= kCoverageRecommendationThreshold;
}

}  // namespace uuq
