// Weighted sampling primitives for the data-integration sampling model
// (paper §2.2) and the Monte-Carlo simulator (Algorithm 2, line 6).
//
// Sources sample WITHOUT replacement from the ground truth (a web page lists
// a company once); the union of many sources approximates sampling WITH
// replacement. Both modes are provided.
#ifndef UUQ_STATS_SAMPLING_H_
#define UUQ_STATS_SAMPLING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"

namespace uuq {

/// Draws k distinct indices from {0..|weights|-1} without replacement with
/// probability proportional to weight (successive sampling). Implemented via
/// the Efraimidis-Spirakis exponential-jumps-free A-ES scheme: key_i =
/// u_i^(1/w_i), take the k largest keys. Zero-weight items are never drawn
/// unless k exceeds the number of positive weights. k is clamped to the
/// number of drawable items.
std::vector<int> WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, int k, Rng* rng);

/// Draws k indices i.i.d. with probability proportional to weight.
std::vector<int> WeightedSampleWithReplacement(
    const std::vector<double>& weights, int k, Rng* rng);

/// Allocation-free uniform sampling without replacement via a PARTIAL
/// Fisher-Yates shuffle: only the first k positions of an internal
/// permutation are shuffled (O(k) work), visited, and then the swaps are
/// undone (O(k)) so the permutation is ready for the next draw. Compare a
/// full shuffle or heap-based selection at O(n) / O(n log k) per draw.
///
/// The permutation is rebuilt (O(n)) only when n changes between calls, so
/// repeated draws at a fixed n — the Monte-Carlo inner loop's shape — cost
/// O(k) and allocate nothing. Draws depend only on `rng` and (n, k), never
/// on prior calls, so results stay deterministic under thread-local reuse.
class PartialShuffler {
 public:
  /// Draws k distinct indices uniformly from {0..n-1} and calls
  /// visit(index) for each, in draw order. k is clamped to n.
  template <typename Visitor>
  void Draw(int n, int k, Rng* rng, Visitor&& visit) {
    if (n <= 0) return;
    if (k > n) k = n;
    EnsureIdentity(n);
    swapped_with_.resize(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      const int j =
          i + static_cast<int>(rng->NextBounded(static_cast<uint64_t>(n - i)));
      std::swap(perm_[static_cast<size_t>(i)], perm_[static_cast<size_t>(j)]);
      swapped_with_[static_cast<size_t>(i)] = j;
      visit(perm_[static_cast<size_t>(i)]);
    }
    // Undo in reverse so perm_ is the identity again for the next call.
    for (int i = k - 1; i >= 0; --i) {
      std::swap(perm_[static_cast<size_t>(i)],
                perm_[static_cast<size_t>(swapped_with_[static_cast<size_t>(i)])]);
    }
  }

 private:
  void EnsureIdentity(int n);

  std::vector<int> perm_;  // identity permutation of size perm_.size()
  std::vector<int> swapped_with_;
};

/// Allocation-free weighted sampling without replacement (same successive-
/// sampling distribution — and the same Rng stream consumption — as
/// WeightedSampleWithoutReplacement): the k largest Efraimidis-Spirakis
/// keys are kept in a bounded min-heap that is REUSED across calls instead
/// of freshly allocated. Exactly one uniform is drawn per positive-weight
/// item, in index order.
class WeightedWorSelector {
 public:
  /// Draws min(k, #positive-weight items) distinct indices with probability
  /// proportional to weight and calls visit(index) for each (selection
  /// order is unspecified — NOT arrival order). Weights must be >= 0.
  template <typename Visitor>
  void Draw(const std::vector<double>& weights, int k, Rng* rng,
            Visitor&& visit) {
    Select(weights, k, rng);
    for (const auto& [log_key, index] : heap_) {
      visit(index);
    }
  }

 private:
  /// Fills heap_ with the selected (log-key, index) pairs.
  void Select(const std::vector<double>& weights, int k, Rng* rng);

  std::vector<std::pair<double, int>> heap_;
};

/// O(1)-per-draw sampler over a fixed weight vector (Vose's alias method).
class AliasSampler {
 public:
  /// Builds the alias tables; weights must be non-negative with positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index with probability proportional to its weight.
  int Sample(Rng* rng) const;

  size_t size() const { return probability_.size(); }

 private:
  std::vector<double> probability_;
  std::vector<int> alias_;
};

}  // namespace uuq

#endif  // UUQ_STATS_SAMPLING_H_
