// Weighted sampling primitives for the data-integration sampling model
// (paper §2.2) and the Monte-Carlo simulator (Algorithm 2, line 6).
//
// Sources sample WITHOUT replacement from the ground truth (a web page lists
// a company once); the union of many sources approximates sampling WITH
// replacement. Both modes are provided.
#ifndef UUQ_STATS_SAMPLING_H_
#define UUQ_STATS_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace uuq {

/// Draws k distinct indices from {0..|weights|-1} without replacement with
/// probability proportional to weight (successive sampling). Implemented via
/// the Efraimidis-Spirakis exponential-jumps-free A-ES scheme: key_i =
/// u_i^(1/w_i), take the k largest keys. Zero-weight items are never drawn
/// unless k exceeds the number of positive weights. k is clamped to the
/// number of drawable items.
std::vector<int> WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, int k, Rng* rng);

/// Draws k indices i.i.d. with probability proportional to weight.
std::vector<int> WeightedSampleWithReplacement(
    const std::vector<double>& weights, int k, Rng* rng);

/// O(1)-per-draw sampler over a fixed weight vector (Vose's alias method).
class AliasSampler {
 public:
  /// Builds the alias tables; weights must be non-negative with positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index with probability proportional to its weight.
  int Sample(Rng* rng) const;

  size_t size() const { return probability_.size(); }

 private:
  std::vector<double> probability_;
  std::vector<int> alias_;
};

}  // namespace uuq

#endif  // UUQ_STATS_SAMPLING_H_
