// Minimal dense linear algebra: just enough for least-squares curve fitting
// (Algorithm 3, line 11) without pulling in an external BLAS.
#ifndef UUQ_STATS_LINALG_H_
#define UUQ_STATS_LINALG_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace uuq {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// this * other; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// this * v; requires v.size() == cols().
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A·x = b by Gaussian elimination with partial pivoting. A must be
/// square with rows() == b.size(). Fails with NumericError on a (near-)
/// singular system.
Result<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b);

/// Least-squares solve of an overdetermined system A·x ≈ b via the normal
/// equations AᵀA·x = Aᵀb. Fails when AᵀA is singular (collinear columns).
Result<std::vector<double>> LeastSquares(const Matrix& a,
                                         const std::vector<double>& b);

}  // namespace uuq

#endif  // UUQ_STATS_LINALG_H_
