// Publicity-distribution generators (paper §2.2, §6.2).
//
// Each data item d_i has a "publicity" p_i — the probability that a source
// mentions it. The paper's synthetic experiments use an exponential shape
// with parameter λ (λ = 0: uniform, λ = 4: highly skewed); the Monte-Carlo
// estimator searches a skew parameter θλ in [-0.4, 0.4]. All generators here
// return vectors normalized to sum to 1, sorted so that index 0 is the most
// public item.
#ifndef UUQ_STATS_DISTRIBUTIONS_H_
#define UUQ_STATS_DISTRIBUTIONS_H_

#include <vector>

#include "common/random.h"

namespace uuq {

/// p_i = 1/n for all i.
std::vector<double> UniformPublicity(int n);

/// p_i ∝ exp(−λ·(i−1)/(n−1)) over ranks i = 1..n. λ = 0 is uniform; λ = 4
/// gives p_1/p_n = e⁴ ≈ 54.6 — the paper's "highly skewed" setting. Negative
/// λ reverses the direction (ascending publicity in rank).
std::vector<double> ExponentialPublicity(int n, double lambda);

/// The Monte-Carlo search parameterization: θλ in [-0.4, 0.4] is mapped to
/// the exponential shape with λ = 10·θλ, so the grid spans the same "almost
/// no to heavy skew" range as the synthetic workloads. See DESIGN.md §2.
std::vector<double> MonteCarloPublicity(int n, double theta_lambda);

/// Zipf / power-law publicity p_i ∝ i^{−s}.
std::vector<double> ZipfPublicity(int n, double exponent);

/// i.i.d. lognormal publicity mass (re-normalized); heavy tailed but not
/// rank-deterministic — used by the realistic scenarios.
std::vector<double> LogNormalPublicity(int n, double sigma, Rng* rng);

/// Normalizes an arbitrary non-negative weight vector to sum to 1.
/// All-zero input becomes uniform.
std::vector<double> Normalize(std::vector<double> weights);

}  // namespace uuq

#endif  // UUQ_STATS_DISTRIBUTIONS_H_
